/** @file Unit tests for the common utilities. */

#include <gtest/gtest.h>

#include <set>

#include "common/bitutils.hh"
#include "common/env.hh"
#include "common/prob_counter.hh"
#include "common/rng.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"

namespace rsep
{
namespace
{

TEST(BitUtils, MaskBasics)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(14), 0x3fffu);
    EXPECT_EQ(mask(64), ~u64{0});
}

TEST(BitUtils, BitsExtract)
{
    EXPECT_EQ(bits(0xdeadbeef, 15, 0), 0xbeefu);
    EXPECT_EQ(bits(0xdeadbeef, 31, 16), 0xdeadu);
    EXPECT_EQ(bits(0xff, 7, 7), 1u);
}

TEST(BitUtils, PowerOfTwoAndLogs)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(24));
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2(4097), 12u);
    EXPECT_EQ(ceilLog2(4097), 13u);
    EXPECT_EQ(ceilLog2(4096), 12u);
}

TEST(BitUtils, XorFoldPaperFormula)
{
    // The paper's 14-bit fold: Hash = val[13..0] ^ val[27..14]
    // ^ val[41..28] ^ val[55..42] ^ val[63..56].
    u64 v = 0x123456789abcdef0ull;
    u64 expect = (v & mask(14)) ^ ((v >> 14) & mask(14)) ^
                 ((v >> 28) & mask(14)) ^ ((v >> 42) & mask(14)) ^
                 ((v >> 56) & mask(14));
    EXPECT_EQ(xorFold(v, 14), expect);
}

TEST(BitUtils, XorFoldPowerOfTwoWidthCollidesZeroMinusOne)
{
    // Section IV-A: with 8/16-bit folds, 0 and -1 collide; with a
    // 14-bit fold they do not.
    EXPECT_EQ(xorFold(~u64{0}, 16), xorFold(u64{0}, 16));
    EXPECT_EQ(xorFold(~u64{0}, 8), xorFold(u64{0}, 8));
    EXPECT_NE(xorFold(~u64{0}, 14), xorFold(u64{0}, 14));
}

class XorFoldWidths : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(XorFoldWidths, StaysInRangeAndIsDeterministic)
{
    unsigned w = GetParam();
    Rng rng(99);
    for (int i = 0; i < 2000; ++i) {
        u64 v = rng.next();
        u64 h = xorFold(v, w);
        EXPECT_LE(h, mask(w));
        EXPECT_EQ(h, xorFold(v, w));
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, XorFoldWidths,
                         ::testing::Values(8u, 10u, 12u, 14u, 16u, 20u));

TEST(BitUtils, RotateLeft)
{
    EXPECT_EQ(rotateLeft(0b1, 4, 1), 0b10u);
    EXPECT_EQ(rotateLeft(0b1000, 4, 1), 0b0001u);
    EXPECT_EQ(rotateLeft(0xabcd, 16, 16), 0xabcdu);
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        u64 va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c.next();
    }
    Rng a2(42), c2(43);
    bool differ = false;
    for (int i = 0; i < 16; ++i)
        differ |= a2.next() != c2.next();
    EXPECT_TRUE(differ);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    std::set<u64> seen;
    for (int i = 0; i < 1000; ++i) {
        u64 v = rng.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(11);
    int hits = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(1, 4);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(SatCounter, SaturatesBothEnds)
{
    SatCounter c(2, 0);
    EXPECT_TRUE(c.decrement());
    c.increment();
    c.increment();
    c.increment();
    EXPECT_TRUE(c.saturated());
    EXPECT_TRUE(c.increment());
    EXPECT_EQ(c.value(), 3u);
}

TEST(SatCounter, ResetAndMax)
{
    SatCounter c(6, 0);
    EXPECT_EQ(c.max(), 63u);
    c.setMax();
    EXPECT_TRUE(c.saturated());
    c.reset(10);
    EXPECT_EQ(c.value(), 10u);
}

TEST(BimodalCounter, HysteresisBehaviour)
{
    BimodalCounter c(2, false);
    EXPECT_FALSE(c.taken());
    c.update(true);
    EXPECT_TRUE(c.taken());
    c.update(false);
    EXPECT_FALSE(c.taken());
    c.update(true);
    c.update(true);
    c.update(true);
    EXPECT_TRUE(c.taken());
    c.update(false);
    EXPECT_TRUE(c.taken()); // strong->weak taken.
}

TEST(ConfidenceCounter, DeterministicSaturatesAt255)
{
    ConfidenceCounter c(ConfidenceKind::Deterministic8);
    for (int i = 0; i < 254; ++i)
        c.onCorrect(nullptr);
    EXPECT_FALSE(c.saturated());
    c.onCorrect(nullptr);
    EXPECT_TRUE(c.saturated());
    EXPECT_EQ(c.effectiveValue(), 255u);
    c.onIncorrect();
    EXPECT_EQ(c.effectiveValue(), 0u);
    EXPECT_FALSE(c.saturated());
}

TEST(ConfidenceCounter, StorageBits)
{
    EXPECT_EQ(ConfidenceCounter(ConfidenceKind::Deterministic8)
                  .storageBits(),
              8u);
    EXPECT_EQ(ConfidenceCounter(ConfidenceKind::Fpc3).storageBits(), 3u);
}

TEST(ConfidenceCounter, FpcExpectedTrialsNear255)
{
    // Statistical: mean number of correct outcomes needed to saturate
    // a 3-bit FPC counter should be ~258.
    Rng rng(1234);
    double total = 0;
    const int runs = 300;
    for (int r = 0; r < runs; ++r) {
        ConfidenceCounter c(ConfidenceKind::Fpc3);
        int trials = 0;
        while (!c.saturated()) {
            c.onCorrect(&rng);
            ++trials;
        }
        total += trials;
    }
    EXPECT_NEAR(total / runs, 258.0, 40.0);
}

TEST(ConfidenceCounter, FpcResetsOnIncorrect)
{
    Rng rng(5);
    ConfidenceCounter c(ConfidenceKind::Fpc3);
    for (int i = 0; i < 2000; ++i)
        c.onCorrect(&rng);
    EXPECT_TRUE(c.saturated());
    c.onIncorrect();
    EXPECT_EQ(c.rawLevel(), 0u);
}

TEST(Stats, HarmonicMean)
{
    EXPECT_DOUBLE_EQ(harmonicMean({2.0, 2.0}), 2.0);
    EXPECT_NEAR(harmonicMean({1.0, 2.0}), 4.0 / 3.0, 1e-12);
    EXPECT_EQ(harmonicMean({}), 0.0);
    EXPECT_EQ(harmonicMean({1.0, 0.0}), 0.0);
}

TEST(Stats, GeometricAndArithmeticMeans)
{
    EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 3.0}), 2.0);
    EXPECT_EQ(geometricMean({}), 0.0);
}

TEST(Stats, HistogramSamplesAndCdf)
{
    StatHistogram h(8);
    h.sample(0);
    h.sample(3);
    h.sample(3);
    h.sample(100); // clamps to last bucket.
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.bucket(7), 1u);
    EXPECT_NEAR(h.cdfAt(3), 0.75, 1e-12);
}

TEST(Stats, GroupDumpAndLookup)
{
    StatCounter a;
    a += 5;
    StatGroup g("grp");
    g.addCounter("a", &a, "a counter");
    EXPECT_EQ(g.counterValue("a"), 5u);
    EXPECT_EQ(g.counterValue("missing"), 0u);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("grp.a"), std::string::npos);
}

TEST(Env, DefaultsWhenUnset)
{
    unsetenv("RSEP_TEST_ENV_X");
    EXPECT_EQ(envU64("RSEP_TEST_ENV_X", 17), 17u);
    EXPECT_DOUBLE_EQ(envDouble("RSEP_TEST_ENV_X", 2.5), 2.5);
}

TEST(Env, ParsesValues)
{
    setenv("RSEP_TEST_ENV_X", "123", 1);
    EXPECT_EQ(envU64("RSEP_TEST_ENV_X", 17), 123u);
    setenv("RSEP_TEST_ENV_X", "0.5", 1);
    EXPECT_DOUBLE_EQ(envDouble("RSEP_TEST_ENV_X", 2.5), 0.5);
    unsetenv("RSEP_TEST_ENV_X");
}

TEST(Env, MalformedValuesWarnAndFallBack)
{
    // Malformed values (including trailing garbage, which the old
    // strtoull-based parse silently truncated) use the default.
    for (const char *bad : {"abc", "12abc", "-3", " ", "0x"}) {
        setenv("RSEP_TEST_ENV_X", bad, 1);
        EXPECT_EQ(envU64("RSEP_TEST_ENV_X", 17), 17u) << bad;
    }
    setenv("RSEP_TEST_ENV_X", "1.5.2", 1);
    EXPECT_DOUBLE_EQ(envDouble("RSEP_TEST_ENV_X", 2.5), 2.5);
    unsetenv("RSEP_TEST_ENV_X");
}

TEST(Env, EnvSet)
{
    unsetenv("RSEP_TEST_ENV_X");
    EXPECT_FALSE(envSet("RSEP_TEST_ENV_X"));
    setenv("RSEP_TEST_ENV_X", "", 1);
    EXPECT_FALSE(envSet("RSEP_TEST_ENV_X"));
    setenv("RSEP_TEST_ENV_X", "1", 1);
    EXPECT_TRUE(envSet("RSEP_TEST_ENV_X"));
    unsetenv("RSEP_TEST_ENV_X");
}

TEST(Env, StrictScalarParses)
{
    u64 u = 0;
    EXPECT_TRUE(parseU64("  42 ", u));
    EXPECT_EQ(u, 42u);
    EXPECT_TRUE(parseU64("0x20", u));
    EXPECT_EQ(u, 32u);
    EXPECT_FALSE(parseU64("", u));
    EXPECT_FALSE(parseU64("-1", u));
    EXPECT_FALSE(parseU64("42z", u));
    EXPECT_FALSE(parseU64("99999999999999999999999", u)); // overflow.

    double d = 0.0;
    EXPECT_TRUE(parseDouble("0.25", d));
    EXPECT_DOUBLE_EQ(d, 0.25);
    EXPECT_FALSE(parseDouble("0.25x", d));

    bool b = false;
    EXPECT_TRUE(parseBool("TRUE", b));
    EXPECT_TRUE(b);
    EXPECT_TRUE(parseBool("off", b));
    EXPECT_FALSE(b);
    EXPECT_FALSE(parseBool("maybe", b));
}

} // namespace
} // namespace rsep

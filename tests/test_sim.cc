/** @file Tests for the simulation configuration and runner layer. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/runner.hh"

namespace rsep::sim
{
namespace
{

TEST(SimConfig, Fig4ArmToggles)
{
    EXPECT_FALSE(SimConfig::baseline().mech.equalityPred);
    EXPECT_TRUE(SimConfig::baseline().mech.zeroIdiomElim);
    EXPECT_TRUE(SimConfig::zeroPredOnly().mech.zeroPred);
    EXPECT_TRUE(SimConfig::moveElimOnly().mech.moveElim);

    SimConfig rsep = SimConfig::rsepIdeal();
    EXPECT_TRUE(rsep.mech.equalityPred);
    EXPECT_TRUE(rsep.mech.moveElim); // side effect of sharing (IV-H1).
    EXPECT_FALSE(rsep.mech.valuePred);
    EXPECT_EQ(rsep.mech.rsep.validation,
              equality::ValidationPolicy::Ideal);
    EXPECT_GT(rsep.mech.rsep.historyDepth, 192u); // >> ROB.

    SimConfig both = SimConfig::rsepPlusVp();
    EXPECT_TRUE(both.mech.equalityPred);
    EXPECT_TRUE(both.mech.valuePred);
}

TEST(SimConfig, RealisticMatchesPaperSection6B)
{
    SimConfig c = SimConfig::rsepRealistic();
    EXPECT_FALSE(c.mech.rsep.idealPredictor);
    EXPECT_EQ(c.mech.rsep.historyDepth, 128u);
    EXPECT_EQ(c.mech.rsep.isrbEntries, 24u);
    EXPECT_TRUE(c.mech.rsep.sampling);
    EXPECT_EQ(c.mech.rsep.startTrainThreshold, 63u);
    EXPECT_EQ(c.mech.rsep.validation,
              equality::ValidationPolicy::Issue2xAnyFu);
}

TEST(SimConfig, ValidationAndSamplingArms)
{
    EXPECT_EQ(SimConfig::rsepValidation(
                  equality::ValidationPolicy::Issue2xLockFu)
                  .mech.rsep.validation,
              equality::ValidationPolicy::Issue2xLockFu);
    SimConfig s15 = SimConfig::rsepSampling(15);
    EXPECT_TRUE(s15.mech.rsep.sampling);
    EXPECT_EQ(s15.mech.rsep.startTrainThreshold, 15u);
}

TEST(SimConfig, Table1Description)
{
    std::string t = describeTable1(SimConfig::baseline());
    EXPECT_NE(t.find("192-entry ROB"), std::string::npos);
    EXPECT_NE(t.find("60-entry IQ"), std::string::npos);
    EXPECT_NE(t.find("72/48-entry LQ/SQ"), std::string::npos);
    EXPECT_NE(t.find("235/235 INT/FP registers"), std::string::npos);
    EXPECT_NE(t.find("Store Sets"), std::string::npos);
    EXPECT_NE(t.find("DDR4-2400"), std::string::npos);
}

TEST(SimConfig, EnvScaling)
{
    setenv("RSEP_SIM_SCALE", "0.5", 1);
    setenv("RSEP_CHECKPOINTS", "2", 1);
    SimConfig c = SimConfig::baseline();
    EXPECT_EQ(c.warmupInsts, 40000u);
    EXPECT_EQ(c.measureInsts, 200000u);
    EXPECT_EQ(c.checkpoints, 2u);
    unsetenv("RSEP_SIM_SCALE");
    unsetenv("RSEP_CHECKPOINTS");
}

TEST(Runner, RunWorkloadProducesPhases)
{
    SimConfig c = SimConfig::baseline();
    c.warmupInsts = 2000;
    c.measureInsts = 8000;
    c.checkpoints = 3;
    RunResult r = runWorkload(c, "namd");
    ASSERT_EQ(r.phases.size(), 3u);
    for (const auto &ph : r.phases) {
        EXPECT_GT(ph.ipc, 0.0);
        EXPECT_EQ(ph.stats.committedInsts.value(), 8000u);
    }
    EXPECT_GT(r.ipcHmean(), 0.0);
    EXPECT_EQ(r.sum(&core::PipelineStats::committedInsts), 24000u);
}

TEST(Runner, SpeedupPct)
{
    SimConfig c = SimConfig::baseline();
    c.warmupInsts = 1000;
    c.measureInsts = 4000;
    c.checkpoints = 1;
    RunResult a = runWorkload(c, "namd");
    EXPECT_NEAR(speedupPct(a, a), 0.0, 1e-9);
}

TEST(Runner, MatrixAndTables)
{
    SimConfig base = SimConfig::baseline();
    base.warmupInsts = 1000;
    base.measureInsts = 4000;
    base.checkpoints = 1;
    SimConfig rsep = SimConfig::rsepIdeal();
    rsep.warmupInsts = 1000;
    rsep.measureInsts = 4000;
    rsep.checkpoints = 1;

    auto rows = runMatrix({base, rsep}, {"namd", "dealII"});
    ASSERT_EQ(rows.size(), 2u);
    ASSERT_EQ(rows[0].byConfig.size(), 2u);

    std::ostringstream os;
    printSpeedupTable(os, rows, {base, rsep});
    EXPECT_NE(os.str().find("namd"), std::string::npos);
    EXPECT_NE(os.str().find("gmean"), std::string::npos);

    std::ostringstream os2;
    printPctTable(os2, rows, {"x"},
                  [](const MatrixRow &, size_t) { return 1.0; });
    EXPECT_NE(os2.str().find("1.00%"), std::string::npos);
}

} // namespace
} // namespace rsep::sim

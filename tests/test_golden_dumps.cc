/**
 * @file
 * Cross-scenario golden pin of the stat-export byte stream.
 *
 * The PR 5 cycle-loop overhaul (ring-buffer ROB, event-driven wakeup,
 * O(1) memory-order checks) promises *byte-identical* stat dumps —
 * same issue order, same tie-breaks — for every registered scenario.
 * This test pins that promise: for each registered scenario (and each
 * arm of the CI smoke scenario file) it runs a small fixed-size matrix
 * over two benchmarks and hashes the canonical CSV dump. The golden
 * hashes were generated from the PR 4 tree (the pre-overhaul
 * simulator) at exactly this sizing; any behavioural drift in the
 * issue/validate/commit machinery shows up as a hash mismatch with the
 * offending scenario named.
 *
 * Regenerating (only legitimate when a PR *intentionally* changes
 * timing behaviour): RSEP_GOLDEN_REGEN=1 ./test_golden_dumps prints
 * the table to paste below.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <sstream>

#include <unistd.h>

#include "common/fnv.hh"
#include "sim/runner.hh"
#include "sim/scenario.hh"
#include "sim/stat_export.hh"

#ifndef RSEP_SOURCE_DIR
#define RSEP_SOURCE_DIR ".."
#endif

namespace rsep::sim
{
namespace
{

/** Golden (scenario -> CSV dump hash) table, generated on the PR 4
 *  tree. Sizing: warmup 4000, measure 12000, 1 checkpoint, seed
 *  0x5eed, benchmarks mcf + hmmer, single thread. */
const std::map<std::string, std::string> goldenHashes = {
    // clang-format off
    {"baseline",               "04a515b479a1d26d"},
    {"zero-pred",              "2d9b8c6ab9ade9b8"},
    {"move-elim",              "192336dc08e069db"},
    {"rsep",                   "d64281bca78a52ca"},
    {"vpred",                  "07edf1aff4d902d7"},
    {"rsep+vpred",             "9db33a9f3d3b168a"},
    {"rsep-val-ideal",         "2266057bf7aa0e1e"},
    {"rsep-val-2x-lock",       "663cbb5c1254ad1c"},
    {"rsep-val-2x-any",        "32fea7d7675ed2d7"},
    {"rsep-val-2x-sample15",   "6a87b03a1cbb6deb"},
    {"rsep-val-2x-sample63",   "231542d1f87deb63"},
    {"rsep-realistic",         "5d8653964aa0b890"},
    {"fig1-probe",             "40ba0373a0a91ad0"},
    {"fig1-redundancy",        "2e3476dcadab2410"},
    {"rsep+zp",                "5ed1e0d1a8577530"},
    {"rsep+vpred+zp",          "e68472a2f8bf89e7"},
    {"rsep-oracle",            "fa7480e50fbb1ae9"},
    {"ci_smoke:smoke-baseline","03031da18d82ebae"},
    {"ci_smoke:smoke-rsep",    "3a9adbd721a9391e"},
    // clang-format on
};

constexpr u64 goldenWarmup = 4000;
constexpr u64 goldenMeasure = 12000;

std::vector<std::string>
goldenBenchmarks()
{
    return {"mcf", "hmmer"};
}

/** Run one scenario's golden matrix and return the CSV dump text.
 *  @p sampling optionally enables time-series sampling for the run —
 *  the dump must come out identical either way. */
std::string
dumpFor(const SimConfig &config, const SampleOptions &sampling = {})
{
    MatrixOptions opts;
    opts.jobs = 1;
    opts.progress = false;
    opts.sampling = sampling;
    std::vector<SimConfig> configs{config};
    std::vector<MatrixRow> rows =
        runMatrix(configs, goldenBenchmarks(), opts);
    std::vector<StatRow> stat_rows = collectStatRows(configs, rows);
    std::ostringstream os;
    CsvStatSink{}.write(os, stat_rows);
    return os.str();
}

/** The scenarios under golden pin: every registered arm at the fixed
 *  golden sizing, plus the CI smoke file's arms at their own sizing. */
std::vector<Scenario>
goldenScenarios()
{
    std::vector<Scenario> out;
    for (const ScenarioInfo &info : registeredScenarios()) {
        std::optional<Scenario> sc = findScenario(info.name);
        if (!sc)
            continue;
        sc->config.warmupInsts = goldenWarmup;
        sc->config.measureInsts = goldenMeasure;
        sc->config.checkpoints = 1;
        sc->config.seed = 0x5eed;
        out.push_back(std::move(*sc));
    }
    ScenarioParse smoke = parseScenarioFile(
        RSEP_SOURCE_DIR "/examples/scenarios/ci_smoke.scn");
    EXPECT_TRUE(smoke.ok()) << smoke.error;
    for (Scenario &sc : smoke.scenarios) {
        sc.name = "ci_smoke:" + sc.name;
        out.push_back(std::move(sc));
    }
    return out;
}

TEST(GoldenDumps, EveryScenarioByteIdenticalToPr4)
{
    const bool regen = std::getenv("RSEP_GOLDEN_REGEN") != nullptr;
    std::ostringstream table;
    for (const Scenario &sc : goldenScenarios()) {
        std::string csv = dumpFor(sc.config);
        std::string hash = hex64(fnv1a64(csv));
        if (regen) {
            table << "    {\"" << sc.name << "\", \"" << hash << "\"},\n";
            continue;
        }
        auto it = goldenHashes.find(sc.name);
        ASSERT_NE(it, goldenHashes.end())
            << "scenario '" << sc.name << "' has no golden hash; "
            << "regenerate with RSEP_GOLDEN_REGEN=1 and review the diff";
        EXPECT_EQ(it->second, hash)
            << "scenario '" << sc.name << "' no longer produces the "
            << "PR 4 stat dump.\nFirst 2000 bytes of the drifted "
            << "dump:\n"
            << csv.substr(0, 2000);
    }
    if (regen)
        std::printf("golden table:\n%s", table.str().c_str());
}

TEST(GoldenDumps, SamplingDoesNotPerturbTheDump)
{
    // --sample-every is observation, not intervention: with sampling
    // attached, the rsep arm's stat dump must still hash to its golden
    // value (the sampler only reads counters on the deterministic
    // cycle axis).
    std::optional<Scenario> sc = findScenario("rsep");
    ASSERT_TRUE(sc.has_value());
    sc->config.warmupInsts = goldenWarmup;
    sc->config.measureInsts = goldenMeasure;
    sc->config.checkpoints = 1;
    sc->config.seed = 0x5eed;

    SampleOptions sampling;
    sampling.every = 1000;
    sampling.dir = (std::filesystem::temp_directory_path() /
                    ("rsep-golden-samples-" + std::to_string(::getpid())))
                       .string();
    std::string csv = dumpFor(sc->config, sampling);
    std::error_code ec;
    std::filesystem::remove_all(sampling.dir, ec);

    EXPECT_EQ(hex64(fnv1a64(csv)), goldenHashes.at("rsep"))
        << "sampling perturbed the rsep stat dump";
}

} // namespace
} // namespace rsep::sim

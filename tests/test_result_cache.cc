/**
 * @file
 * Result-cache tests: record serialization round-trips a PhaseResult
 * exactly, hits/misses behave, every corruption mode (garbage,
 * truncation, version drift, wrong-key echo) quarantines instead of
 * serving bad data, and a warm-cache runMatrix re-simulates nothing
 * while producing bit-identical results.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/fault.hh"
#include "sim/result_cache.hh"
#include "sim/runner.hh"
#include "sim/scenario.hh"
#include "sim/stat_export.hh"

namespace fs = std::filesystem;

namespace rsep::sim
{
namespace
{

SimConfig
shrunk(SimConfig c)
{
    c.warmupInsts = 1'000;
    c.measureInsts = 3'000;
    c.checkpoints = 2;
    c.seed = 0x5eed;
    return c;
}

/** A scratch cache directory, removed on scope exit. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        path = (fs::temp_directory_path() /
                ("rsep-cache-test-" +
                 std::to_string(::getpid()) + "-" +
                 std::to_string(counter()++)))
                   .string();
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    static int &
    counter()
    {
        static int n = 0;
        return n;
    }
};

void
expectSamePhase(const PhaseResult &a, const PhaseResult &b)
{
    EXPECT_EQ(a.ipc, b.ipc); // bit-equal, not approximately.
    core::PipelineStats sa = a.stats, sb = b.stats;
    visitStats(sa, [&](const char *name, StatCounter &c) {
        u64 other = 0;
        visitStats(sb, [&](const char *n2, StatCounter &c2) {
            if (std::string(name) == n2)
                other = c2.value();
        });
        EXPECT_EQ(c.value(), other) << name;
    });
    for (size_t i = 0; i < sa.commitGroupProducers.buckets(); ++i)
        EXPECT_EQ(sa.commitGroupProducers.bucket(i),
                  sb.commitGroupProducers.bucket(i))
            << "bucket " << i;
    ASSERT_EQ(a.engineStats.size(), b.engineStats.size());
    for (size_t i = 0; i < a.engineStats.size(); ++i) {
        EXPECT_EQ(a.engineStats[i].first, b.engineStats[i].first);
        EXPECT_EQ(a.engineStats[i].second, b.engineStats[i].second);
    }
}

TEST(ResultCache, RecordRoundTripIsExact)
{
    SimConfig cfg = shrunk(SimConfig::rsepIdeal());
    PhaseResult pr = runPhase(cfg, "hmmer", 0);
    CacheKey key{"hmmer", configHash(cfg), 0, cfg.seed};

    std::string body = ResultCache::serializeRecord(key, pr);
    PhaseResult back;
    std::string err = ResultCache::parseRecord(body, key, back);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_TRUE(back.fromCache);
    expectSamePhase(pr, back);
    EXPECT_EQ(back.wallMicros, pr.wallMicros);
}

TEST(ResultCache, HitMissAndKeyEcho)
{
    TempDir tmp;
    ResultCache cache(tmp.path);
    ASSERT_TRUE(cache.enabled());

    SimConfig cfg = shrunk(SimConfig::baseline());
    PhaseResult pr = runPhase(cfg, "mcf", 0);
    CacheKey key{"mcf", configHash(cfg), 0, cfg.seed};

    EXPECT_FALSE(cache.load(key).has_value()); // cold.
    ASSERT_TRUE(cache.store(key, pr));
    auto hit = cache.load(key);
    ASSERT_TRUE(hit.has_value());
    expectSamePhase(pr, *hit);

    // Other phases/benchmarks miss.
    EXPECT_FALSE(cache.load({"mcf", key.configHash, 1, cfg.seed}));
    EXPECT_FALSE(cache.load({"namd", key.configHash, 0, cfg.seed}));

    ResultCache::Counters c = cache.counters();
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.misses, 3u);
    EXPECT_EQ(c.stores, 1u);
    EXPECT_EQ(c.quarantined, 0u);

    // A record reached through the wrong filename (the key echo does
    // not match) is quarantined, not served.
    CacheKey other{"namd", key.configHash, 0, cfg.seed};
    fs::create_directories(
        fs::path(cache.cellPath(other)).parent_path());
    fs::copy_file(cache.cellPath(key), cache.cellPath(other));
    EXPECT_FALSE(cache.load(other).has_value());
    EXPECT_TRUE(fs::exists(cache.cellPath(other) + ".corrupt"));
    EXPECT_EQ(cache.counters().quarantined, 1u);
}

TEST(ResultCache, CorruptionQuarantines)
{
    TempDir tmp;
    ResultCache cache(tmp.path);

    SimConfig cfg = shrunk(SimConfig::baseline());
    PhaseResult pr = runPhase(cfg, "hmmer", 1);
    CacheKey key{"hmmer", configHash(cfg), 1, cfg.seed};
    std::string path = cache.cellPath(key);

    auto corrupt_with = [&](const std::string &text) {
        ASSERT_TRUE(cache.store(key, pr));
        {
            std::ofstream os(path, std::ios::binary | std::ios::trunc);
            os << text;
        }
        EXPECT_FALSE(cache.load(key).has_value());
        EXPECT_FALSE(fs::exists(path)) << "corrupt record left in place";
        EXPECT_TRUE(fs::exists(path + ".corrupt"));
        fs::remove(path + ".corrupt");
    };

    // Plain garbage.
    corrupt_with("not a cache record at all\n");

    // Flipped payload byte under a stale checksum.
    {
        ASSERT_TRUE(cache.store(key, pr));
        std::ifstream is(path, std::ios::binary);
        std::string text((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
        size_t digit = text.find("ipc_bits = ");
        ASSERT_NE(digit, std::string::npos);
        text[digit + 11] = text[digit + 11] == '0' ? '1' : '0';
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << text;
    }
    EXPECT_FALSE(cache.load(key).has_value());
    EXPECT_TRUE(fs::exists(path + ".corrupt"));
    fs::remove(path + ".corrupt");

    // Truncation (torn write without the atomic rename).
    {
        ASSERT_TRUE(cache.store(key, pr));
        std::ifstream is(path, std::ios::binary);
        std::string text((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << text.substr(0, text.size() / 2);
    }
    EXPECT_FALSE(cache.load(key).has_value());

    // Version drift.
    PhaseResult back;
    std::string body = ResultCache::serializeRecord(key, pr);
    body.replace(body.find("rsep-cell-cache 1"), 17, "rsep-cell-cache 9");
    EXPECT_FALSE(ResultCache::parseRecord(body, key, back).empty());

    // After all that abuse a fresh store still works.
    ASSERT_TRUE(cache.store(key, pr));
    EXPECT_TRUE(cache.load(key).has_value());
}

TEST(ResultCache, InjectedStoreFaultsFailCleanOrQuarantine)
{
    fault::disarmAll();
    TempDir tmp;
    ResultCache cache(tmp.path);

    SimConfig cfg = shrunk(SimConfig::baseline());
    PhaseResult pr = runPhase(cfg, "mcf", 0);
    CacheKey key{"mcf", configHash(cfg), 0, cfg.seed};
    std::string path = cache.cellPath(key);
    std::string err;

    // cache.write errno: the store fails, nothing is published.
    ASSERT_TRUE(fault::armFromSpec("cache.write:fail=enospc", &err))
        << err;
    EXPECT_FALSE(cache.store(key, pr));
    EXPECT_FALSE(fs::exists(path));
    EXPECT_GE(cache.counters().ioErrors, 1u);

    // cache.rename errno: the publish fails, and no temp debris stays
    // behind to confuse a later GC.
    ASSERT_TRUE(fault::armFromSpec("cache.rename:fail=enospc", &err))
        << err;
    EXPECT_FALSE(cache.store(key, pr));
    EXPECT_FALSE(fs::exists(path));
    EXPECT_TRUE(fs::is_empty(fs::path(path).parent_path()));

    // cache.write truncate: the torn record PUBLISHES — simulated
    // silent on-disk corruption. The next load must quarantine it, and
    // an unarmed re-store repopulates the cell.
    ASSERT_TRUE(fault::armFromSpec("cache.write:fail=truncate:bytes=64",
                                   &err))
        << err;
    EXPECT_TRUE(cache.store(key, pr));
    EXPECT_TRUE(fs::exists(path));
    EXPECT_FALSE(cache.load(key).has_value());
    EXPECT_FALSE(fs::exists(path));
    EXPECT_TRUE(fs::exists(path + ".corrupt"));
    EXPECT_GE(cache.counters().quarantined, 1u);

    EXPECT_TRUE(cache.store(key, pr));
    auto hit = cache.load(key);
    ASSERT_TRUE(hit.has_value());
    expectSamePhase(pr, *hit);
    fault::disarmAll();
}

TEST(ResultCache, WarmMatrixSimulatesNothingAndMatchesCold)
{
    TempDir tmp;
    std::vector<SimConfig> configs = {shrunk(SimConfig::baseline()),
                                      shrunk(SimConfig::rsepIdeal())};
    std::vector<std::string> benches = {"hmmer", "mcf"};

    MatrixOptions opts;
    opts.jobs = 2;
    opts.progress = false;
    opts.cacheDir = tmp.path;

    auto cold = runMatrix(configs, benches, opts);
    auto warm = runMatrix(configs, benches, opts);

    for (size_t b = 0; b < benches.size(); ++b) {
        for (size_t c = 0; c < configs.size(); ++c) {
            const RunResult &rc = cold[b].byConfig[c];
            const RunResult &rw = warm[b].byConfig[c];
            // Cold run simulated everything...
            EXPECT_EQ(rc.timing.cellsRun.value(), rc.phases.size());
            EXPECT_EQ(rc.timing.cacheHits.value(), 0u);
            EXPECT_EQ(rc.timing.cacheMisses.value(), rc.phases.size());
            // ...the warm run simulated nothing.
            EXPECT_EQ(rw.timing.cellsRun.value(), 0u);
            EXPECT_EQ(rw.timing.cacheMisses.value(), 0u);
            EXPECT_EQ(rw.timing.cacheHits.value(), rw.phases.size());
            ASSERT_EQ(rc.phases.size(), rw.phases.size());
            for (size_t p = 0; p < rc.phases.size(); ++p)
                expectSamePhase(rc.phases[p], rw.phases[p]);
        }
    }

    // The default (timing-free) stat dump is byte-reproducible across
    // cache temperatures — the acceptance property of the cache.
    std::ostringstream csv_cold, csv_warm;
    CsvStatSink{}.write(csv_cold, collectStatRows(configs, cold));
    CsvStatSink{}.write(csv_warm, collectStatRows(configs, warm));
    EXPECT_EQ(csv_cold.str(), csv_warm.str());

    // With --timings the cache-hit counters surface in the dump.
    auto rows = collectStatRows(configs, warm, /*include_timings=*/true);
    ASSERT_FALSE(rows.empty());
    bool saw_hits = false;
    for (const auto &[name, value] : rows[0].counters)
        if (name == "timing.cache_hits") {
            saw_hits = true;
            EXPECT_EQ(value, rows[0].checkpoints);
        }
    EXPECT_TRUE(saw_hits);
}

} // namespace
} // namespace rsep::sim

/**
 * @file
 * Equivalence pins for the PR 6 predictor hot path:
 *  - incremental folded-history registers (GeoFolds) vs from-scratch
 *    xorFold over every (history length, fold width) geometry the
 *    predictors register, across inserts and squash restores;
 *  - Tage folded predict/update vs the from-scratch overloads;
 *  - ItageTable folded lookup vs the from-scratch overload;
 *  - ValueEqIndex + dense producer ordinals vs the reference
 *    youngest-first ROB walk of the oracle equality engine.
 */

#include <gtest/gtest.h>

#include <deque>
#include <optional>
#include <vector>

#include "common/rng.hh"
#include "core/value_index.hh"
#include "pred/ghist.hh"
#include "pred/tage.hh"
#include "rsep/distance_pred.hh"

namespace rsep::pred
{
namespace
{

TEST(GeoFolds, MatchesFromScratchAcrossInsertsAndRestores)
{
    // Every geometry the repo's predictors use, plus edge cases:
    // len < bits, len == bits, len == 64, full-width fold.
    GeoFoldSpec spec;
    TageParams tp;
    for (unsigned c = 0; c < tp.numTagged; ++c) {
        spec.require(tp.histLens[c], tp.taggedBits);
        spec.require(tp.histLens[c], tp.tagBits[c]);
    }
    for (unsigned len : {2u, 4u, 8u, 16u, 32u, 64u}) {
        for (unsigned bits : {5u, 9u, 10u, 13u, 18u})
            spec.require(len, bits);
    }
    spec.require(0, 8);   // empty window: fold pinned to 0.
    spec.require(1, 8);   // single-bit window.
    spec.require(3, 8);   // len < bits.
    spec.require(9, 9);   // len == bits.
    spec.require(64, 64); // full-width identity fold.
    spec.require(63, 2);  // narrow fold, maximal chunk count.

    GeoFolds folds;
    folds.bind(&spec);
    GlobalHist h;
    Rng rng(0x600d);
    std::vector<GlobalHist> snaps;

    for (int step = 0; step < 20000; ++step) {
        if (rng.chance(1, 50) && !snaps.empty()) {
            // Squash restore: rewind to an arbitrary snapshot.
            h = snaps[rng.below(snaps.size())];
            folds.recompute(h.dir);
        } else {
            if (rng.chance(1, 100))
                snaps.push_back(h);
            bool taken = rng.chance(1, 2);
            Addr pc = 0x400000 + (rng.below(4096) << 2);
            folds.insertDir(taken, h.dir);
            h.insert(taken, pc);
        }
        for (unsigned i = 0; i < spec.size(); ++i) {
            const auto &sl = spec.slots()[i];
            u64 expect = sl.len == 0
                ? 0
                : xorFold(h.dir & mask(sl.len), sl.bits);
            ASSERT_EQ(folds.fold(i), expect)
                << "slot " << i << " len=" << sl.len
                << " bits=" << sl.bits << " at step " << step;
        }
    }
}

TEST(GeoFolds, FoldedHashesMatchUnfolded)
{
    GlobalHist h;
    Rng rng(0xf01d);
    for (int step = 0; step < 5000; ++step) {
        h.insert(rng.chance(1, 2), 0x400000 + (rng.below(1024) << 2));
        if (rng.chance(1, 4))
            h.insertPath(0x500000 + (rng.below(1024) << 2));
        Addr pc = 0x400000 + (rng.below(4096) << 2);
        for (unsigned len : {0u, 2u, 5u, 16u, 33u, 64u}) {
            for (unsigned bits : {9u, 10u, 13u}) {
                u64 df = len == 0 ? 0 : xorFold(h.dir & mask(len), bits);
                ASSERT_EQ(geoIndexFolded(pc, df, h.path, len, bits),
                          geoIndex(pc, h, len, bits));
                ASSERT_EQ(geoTagFolded(pc, df, bits),
                          geoTag(pc, h, len, bits));
            }
        }
    }
}

TEST(Tage, FoldedPathIsByteIdenticalToScratch)
{
    // Two identically seeded instances, one driven through the folded
    // overloads, one through the from-scratch overloads, over a random
    // branch stream with squash restores: every prediction must agree
    // (identical indices => identical table evolution, both rngs
    // consume the same allocation rolls).
    Tage a, b;
    GeoFoldSpec spec;
    a.registerFolds(spec);
    GeoFolds folds;
    folds.bind(&spec);
    GlobalHist h;
    Rng rng(0x7a6e);
    std::vector<GlobalHist> snaps;

    for (int step = 0; step < 30000; ++step) {
        if (rng.chance(1, 200) && !snaps.empty()) {
            h = snaps[rng.below(snaps.size())];
            folds.recompute(h.dir);
        } else if (rng.chance(1, 100)) {
            snaps.push_back(h);
        }
        Addr pc = 0x400000 + (rng.below(256) << 2);
        // Correlated outcome so tagged components allocate and match.
        bool taken = ((h.dir & 5) == 1) || rng.chance(1, 7);

        TageLookup la = a.predict(pc, h, folds);
        TageLookup lb = b.predict(pc, h);
        ASSERT_EQ(la.pred, lb.pred) << "step " << step;
        ASSERT_EQ(la.altPred, lb.altPred) << "step " << step;
        ASSERT_EQ(la.provider, lb.provider) << "step " << step;
        ASSERT_EQ(la.altProvider, lb.altProvider) << "step " << step;
        ASSERT_EQ(la.providerWeak, lb.providerWeak) << "step " << step;
        // The carried indices/tags (what commit-time update consumes)
        // must also agree between the folded and scratch hash paths.
        for (unsigned c = 0; c < 12; ++c) {
            ASSERT_EQ(la.idx[c], lb.idx[c]) << "step " << step << " c " << c;
            ASSERT_EQ(la.tag[c], lb.tag[c]) << "step " << step << " c " << c;
        }

        a.update(la, pc, taken);
        b.update(lb, pc, taken);
        folds.insertDir(taken, h.dir);
        h.insert(taken, pc);
        if (rng.chance(1, 8))
            h.insertPath(0x500000 + (rng.below(256) << 2));
    }
}

TEST(Itage, FoldedLookupIsByteIdenticalToScratch)
{
    auto params = equality::DistancePredictorParams::ideal().itage;
    ItageTable table(params, 42);
    GeoFoldSpec spec;
    table.registerFolds(spec);
    GeoFolds folds;
    folds.bind(&spec);
    GlobalHist h;
    Rng rng(0x17a6);

    for (int step = 0; step < 20000; ++step) {
        Addr pc = 0x400000 + (rng.below(512) << 2);
        ItageLookup la = table.lookup(pc, h, folds);
        ItageLookup lb = table.lookup(pc, h);
        ASSERT_EQ(la.provider, lb.provider) << "step " << step;
        ASSERT_EQ(la.payload, lb.payload) << "step " << step;
        ASSERT_EQ(la.confidence, lb.confidence) << "step " << step;
        ASSERT_EQ(la.confident, lb.confident) << "step " << step;
        ASSERT_EQ(la.altValid, lb.altValid) << "step " << step;
        ASSERT_EQ(la.altPayload, lb.altPayload) << "step " << step;
        ASSERT_EQ(la.baseIdx, lb.baseIdx) << "step " << step;
        for (unsigned c = 0; c < params.numTagged; ++c) {
            ASSERT_EQ(la.idx[c], lb.idx[c]) << "step " << step;
            ASSERT_EQ(la.tag[c], lb.tag[c]) << "step " << step;
        }
        // Train so tagged components populate and the match loop is
        // exercised with hits, then advance the history.
        table.update(lb, rng.below(200), true);
        bool taken = rng.chance(1, 2);
        folds.insertDir(taken, h.dir);
        h.insert(taken, pc);
        if (rng.chance(1, 4))
            h.insertPath(0x500000 + (rng.below(512) << 2));
    }
}

} // namespace
} // namespace rsep::pred

namespace rsep::core
{
namespace
{

/** Minimal in-ROB instruction model for the walk-vs-index pin. */
struct RefInst
{
    u64 seq;
    bool producer;
    u64 value;
    u64 ord; // producer ordinal (valid when producer).
};

/** Deterministic stand-in for the ISRB share() refusal. */
bool
refuses(u64 seq)
{
    u64 x = seq * 0x9e3779b97f4a7c15ull;
    return ((x >> 13) & 7) == 0; // ~1/8 of producers refuse.
}

/** Reference: the oracle engine's original youngest-first ROB walk. */
std::optional<u64>
walkReference(const std::deque<RefInst> &rob, u64 probe_value,
              u64 window, u64 *refused_out)
{
    u64 producers_seen = 0;
    for (size_t i = rob.size(); i-- > 0;) {
        const RefInst &p = rob[i];
        if (!p.producer)
            continue;
        if (window && ++producers_seen > window)
            break;
        if (p.value != probe_value)
            continue;
        if (refuses(p.seq)) {
            ++*refused_out;
            continue;
        }
        return p.seq;
    }
    return std::nullopt;
}

/** The engine's indexed scan (oracle_eq_engine.cc, index path). */
std::optional<u64>
scanIndexed(const ValueEqIndex &vidx, u64 next_ord, u64 probe_value,
            u64 window, u64 *refused_out)
{
    const u64 floor_ord =
        (window && next_ord > window) ? next_ord - window : 0;
    if (const auto *prods = vidx.find(probe_value)) {
        for (size_t i = prods->size(); i-- > 0;) {
            const ValueEqIndex::Prod &pe = (*prods)[i];
            if (pe.ord < floor_ord)
                break;
            if (refuses(pe.seq)) {
                ++*refused_out;
                continue;
            }
            return pe.seq;
        }
    }
    return std::nullopt;
}

TEST(ValueEqIndex, MatchesReferenceWalkUnderRenameCommitSquash)
{
    for (u64 window : {u64{0}, u64{4}, u64{32}, u64{1024}}) {
        ValueEqIndex vidx;
        std::deque<RefInst> rob;
        u64 next_seq = 0, next_ord = 0;
        Rng rng(0xacc0 + window);

        for (int step = 0; step < 40000; ++step) {
            unsigned op = rng.below(100);
            if (op < 55) {
                // Rename: ~3/4 of instructions produce a register.
                RefInst inst{next_seq++, rng.below(4) != 0,
                             rng.below(24), 0};
                if (inst.producer) {
                    inst.ord = next_ord++;
                    vidx.add(inst.value, inst.seq, inst.ord);
                }
                rob.push_back(inst);
            } else if (op < 80) {
                if (!rob.empty()) { // commit oldest.
                    const RefInst &oldest = rob.front();
                    if (oldest.producer)
                        vidx.remove(oldest.value, oldest.seq);
                    rob.pop_front();
                }
            } else if (op < 90) {
                // Squash a random young suffix (young -> old, with the
                // ordinal rollback the pipeline performs).
                size_t k = rob.empty() ? 0 : rng.below(rob.size()) + 1;
                for (size_t n = 0; n < k; ++n) {
                    const RefInst &young = rob.back();
                    if (young.producer) {
                        auto ord = vidx.remove(young.value, young.seq);
                        ASSERT_TRUE(ord.has_value());
                        next_ord = *ord;
                    }
                    rob.pop_back();
                }
            } else {
                // Probe: a hypothetical renaming instruction.
                u64 v = rng.below(24);
                u64 ref_refused = 0, idx_refused = 0;
                auto ref =
                    walkReference(rob, v, window, &ref_refused);
                auto idx = scanIndexed(vidx, next_ord, v, window,
                                       &idx_refused);
                ASSERT_EQ(ref.has_value(), idx.has_value())
                    << "window " << window << " step " << step;
                if (ref)
                    ASSERT_EQ(*ref, *idx)
                        << "window " << window << " step " << step;
                ASSERT_EQ(ref_refused, idx_refused)
                    << "window " << window << " step " << step;
            }
        }
    }
}

} // namespace
} // namespace rsep::core

/** @file Tests for the ITTAGE payload machinery and D-VTAGE. */

#include <gtest/gtest.h>

#include "pred/dvtage.hh"
#include "pred/ittage.hh"

namespace rsep::pred
{
namespace
{

ItageParams
smallParams()
{
    ItageParams p;
    p.baseBits = 8;
    p.numTagged = 4;
    p.taggedBits = 7;
    p.histLens = {2, 4, 8, 16, 0, 0, 0, 0};
    p.tagBits = {8, 9, 10, 11, 0, 0, 0, 0};
    p.payloadBits = 8;
    return p;
}

TEST(Itage, LearnsConstantPayloadAndGatesOnConfidence)
{
    ItageTable t(smallParams());
    GlobalHist h;
    Addr pc = 0x400010;
    // Well below the 255-threshold: never confident.
    for (int i = 0; i < 100; ++i) {
        ItageLookup lk = t.lookup(pc, h);
        EXPECT_FALSE(lk.confident);
        t.update(lk, 42);
    }
    // Enough additional correct observations to saturate (the first
    // observation replaced the payload rather than counting).
    for (int i = 0; i < 300; ++i) {
        ItageLookup lk = t.lookup(pc, h);
        t.update(lk, 42);
    }
    ItageLookup lk = t.lookup(pc, h);
    EXPECT_TRUE(lk.confident);
    EXPECT_EQ(lk.payload, 42u);
}

TEST(Itage, ConfidenceCollapsesOnWrongPayload)
{
    ItageTable t(smallParams());
    GlobalHist h;
    Addr pc = 0x400020;
    for (int i = 0; i < 300; ++i) {
        ItageLookup lk = t.lookup(pc, h);
        t.update(lk, 7);
    }
    EXPECT_TRUE(t.lookup(pc, h).confident);
    ItageLookup lk = t.lookup(pc, h);
    t.update(lk, 9); // wrong payload.
    EXPECT_FALSE(t.lookup(pc, h).confident);
}

TEST(Itage, UpdateIncorrectOnlyDropsConfidence)
{
    ItageTable t(smallParams());
    GlobalHist h;
    Addr pc = 0x400030;
    for (int i = 0; i < 300; ++i) {
        ItageLookup lk = t.lookup(pc, h);
        t.update(lk, 5);
    }
    ItageLookup lk = t.lookup(pc, h);
    EXPECT_TRUE(lk.confident);
    t.updateIncorrect(lk);
    lk = t.lookup(pc, h);
    EXPECT_FALSE(lk.confident);
    EXPECT_EQ(lk.payload, 5u); // payload preserved.
}

TEST(Itage, HistoryDisambiguatesPayloads)
{
    // Payload alternates with the last branch outcome: the tagged
    // components must separate the two contexts.
    ItageTable t(smallParams());
    Addr pc = 0x400040;
    GlobalHist taken_h, not_taken_h;
    taken_h.insert(true, 0x400000);
    not_taken_h.insert(false, 0x400000);
    for (int i = 0; i < 600; ++i) {
        ItageLookup lk = t.lookup(pc, taken_h);
        t.update(lk, 11);
        lk = t.lookup(pc, not_taken_h);
        t.update(lk, 22);
    }
    EXPECT_EQ(t.lookup(pc, taken_h).payload, 11u);
    EXPECT_EQ(t.lookup(pc, not_taken_h).payload, 22u);
    EXPECT_TRUE(t.lookup(pc, taken_h).confident);
    EXPECT_TRUE(t.lookup(pc, not_taken_h).confident);
}

TEST(Itage, UnrepresentablePayloadNeverConfident)
{
    ItageTable t(smallParams()); // 8-bit payloads.
    GlobalHist h;
    Addr pc = 0x400050;
    EXPECT_FALSE(t.representable(300));
    for (int i = 0; i < 600; ++i) {
        ItageLookup lk = t.lookup(pc, h);
        t.update(lk, 300);
    }
    EXPECT_FALSE(t.lookup(pc, h).confident);
}

TEST(Itage, StorageBitsScaleWithConfig)
{
    ItageTable small(smallParams());
    ItageParams big = smallParams();
    big.baseBits = 12;
    ItageTable large(big);
    EXPECT_GT(large.storageBits(), small.storageBits());
}

TEST(Dvtage, LearnsConstantValue)
{
    Dvtage vp;
    GlobalHist h;
    Addr pc = 0x400100;
    for (int i = 0; i < 300; ++i) {
        VpLookup lk = vp.lookup(pc, h);
        vp.commit(lk, 1234);
    }
    VpLookup lk = vp.lookup(pc, h);
    EXPECT_TRUE(lk.confident);
    EXPECT_EQ(lk.predicted, 1234u);
    vp.commit(lk, 1234);
}

TEST(Dvtage, LearnsStride)
{
    Dvtage vp;
    GlobalHist h;
    Addr pc = 0x400200;
    u64 v = 100;
    for (int i = 0; i < 400; ++i) {
        VpLookup lk = vp.lookup(pc, h);
        vp.commit(lk, v);
        v += 8;
    }
    VpLookup lk = vp.lookup(pc, h);
    EXPECT_TRUE(lk.confident);
    EXPECT_EQ(lk.predicted, v);
    vp.commit(lk, v);
}

TEST(Dvtage, InflightChainingThroughSpecWindow)
{
    // Several in-flight instances of a strided instruction: each must
    // chain off the previous *predicted* value (BeBoP spec window).
    Dvtage vp;
    GlobalHist h;
    Addr pc = 0x400300;
    u64 v = 0;
    for (int i = 0; i < 400; ++i) {
        VpLookup lk = vp.lookup(pc, h);
        vp.commit(lk, v);
        v += 4;
    }
    // Four lookups before any commit.
    VpLookup a = vp.lookup(pc, h);
    VpLookup b = vp.lookup(pc, h);
    VpLookup c = vp.lookup(pc, h);
    EXPECT_EQ(a.predicted, v);
    EXPECT_EQ(b.predicted, v + 4);
    EXPECT_EQ(c.predicted, v + 8);
    vp.commit(a, v);
    vp.commit(b, v + 4);
    vp.commit(c, v + 8);
}

TEST(Dvtage, SquashClearsSpecWindow)
{
    Dvtage vp;
    GlobalHist h;
    Addr pc = 0x400400;
    u64 v = 0;
    for (int i = 0; i < 400; ++i) {
        VpLookup lk = vp.lookup(pc, h);
        vp.commit(lk, v);
        v += 4;
    }
    VpLookup wrong = vp.lookup(pc, h); // in-flight, then squashed.
    (void)wrong;
    vp.squash();
    VpLookup lk = vp.lookup(pc, h);
    EXPECT_EQ(lk.predicted, v); // back to committed last value + stride.
    vp.commit(lk, v);
}

TEST(Dvtage, CountsMispredictions)
{
    Dvtage vp;
    GlobalHist h;
    Addr pc = 0x400500;
    for (int i = 0; i < 300; ++i) {
        VpLookup lk = vp.lookup(pc, h);
        vp.commit(lk, 50);
    }
    VpLookup lk = vp.lookup(pc, h);
    ASSERT_TRUE(lk.confident);
    vp.commit(lk, 999); // surprise.
    EXPECT_EQ(vp.mispredicts.value(), 1u);
    EXPECT_GT(vp.correctPreds.value(), 0u);
}

TEST(Dvtage, StorageIsHundredsOfKB)
{
    Dvtage vp;
    double kb = static_cast<double>(vp.storageBits()) / 8.0 / 1024.0;
    // The paper's comparison predictor is ~256KB.
    EXPECT_GT(kb, 150.0);
    EXPECT_LT(kb, 400.0);
}

} // namespace
} // namespace rsep::pred

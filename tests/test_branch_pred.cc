/** @file Tests for TAGE, BTB, RAS and the BranchUnit facade. */

#include <gtest/gtest.h>

#include "pred/branch_unit.hh"

namespace rsep::pred
{
namespace
{

TEST(Tage, LearnsStronglyBiasedBranch)
{
    Tage tage;
    GlobalHist h;
    Addr pc = 0x400100;
    int correct = 0;
    for (int i = 0; i < 2000; ++i) {
        TageLookup lk = tage.predict(pc, h);
        bool taken = true;
        if (i >= 1000)
            correct += lk.pred == taken;
        tage.update(lk, pc, taken);
        h.insert(taken, pc);
    }
    EXPECT_GT(correct, 990);
}

TEST(Tage, LearnsAlternatingPatternViaHistory)
{
    Tage tage;
    GlobalHist h;
    Addr pc = 0x400200;
    int correct = 0;
    for (int i = 0; i < 4000; ++i) {
        bool taken = (i % 2) == 0;
        TageLookup lk = tage.predict(pc, h);
        if (i >= 2000)
            correct += lk.pred == taken;
        tage.update(lk, pc, taken);
        h.insert(taken, pc);
    }
    EXPECT_GT(correct, 1900);
}

TEST(Tage, LearnsLoopExitPattern)
{
    // taken x7 then not-taken, repeating: needs ~3 bits of history.
    Tage tage;
    GlobalHist h;
    Addr pc = 0x400300;
    int correct = 0;
    for (int i = 0; i < 8000; ++i) {
        bool taken = (i % 8) != 7;
        TageLookup lk = tage.predict(pc, h);
        if (i >= 4000)
            correct += lk.pred == taken;
        tage.update(lk, pc, taken);
        h.insert(taken, pc);
    }
    EXPECT_GT(correct, 3800);
}

TEST(Tage, StorageMatchesConfigOrder)
{
    Tage tage;
    // ~15K entries: 8K base x 2b + 12 x 512 tagged entries.
    u64 bits = tage.storageBits();
    EXPECT_GT(bits, 8192u * 2);
    EXPECT_LT(bits, 200 * 1024 * 8);
}

TEST(Btb, InstallLookupAndUpdate)
{
    Btb btb(64, 2);
    EXPECT_EQ(btb.lookup(0x400000), 0u);
    btb.update(0x400000, 0x400100);
    EXPECT_EQ(btb.lookup(0x400000), 0x400100u);
    btb.update(0x400000, 0x400200);
    EXPECT_EQ(btb.lookup(0x400000), 0x400200u);
}

TEST(Btb, SetConflictEviction)
{
    Btb btb(8, 2); // 4 sets x 2 ways.
    // Three branches mapping to the same set: one must be evicted.
    Addr a = 0x400000, b2 = a + 4 * 4, c = a + 8 * 4;
    btb.update(a, 1);
    btb.update(b2, 2);
    btb.update(c, 3);
    int present = (btb.lookup(a) != 0) + (btb.lookup(b2) != 0) +
                  (btb.lookup(c) != 0);
    EXPECT_EQ(present, 2);
}

TEST(Ras, PushPopNesting)
{
    ReturnAddressStack ras(8);
    ras.push(0x1000);
    ras.push(0x2000);
    EXPECT_EQ(ras.top(), 0x2000u);
    EXPECT_EQ(ras.pop(), 0x2000u);
    EXPECT_EQ(ras.pop(), 0x1000u);
    EXPECT_EQ(ras.pop(), 0u); // empty.
}

TEST(Ras, SnapshotRestoreRepairsPointer)
{
    ReturnAddressStack ras(8);
    ras.push(0x1000);
    auto snap = ras.snapshot();
    ras.push(0x2000);
    ras.pop();
    ras.pop();
    ras.restore(snap);
    EXPECT_EQ(ras.pop(), 0x1000u);
}

TEST(Ras, WrapsAtCapacity)
{
    ReturnAddressStack ras(4);
    for (Addr i = 1; i <= 6; ++i)
        ras.push(i * 0x100);
    // Deepest entries overwritten; top 4 remain.
    EXPECT_EQ(ras.pop(), 0x600u);
    EXPECT_EQ(ras.pop(), 0x500u);
    EXPECT_EQ(ras.pop(), 0x400u);
    EXPECT_EQ(ras.pop(), 0x300u);
}

TEST(BranchUnit, CondBranchTrainsToCorrect)
{
    BranchUnit bu;
    isa::StaticInst si;
    si.op = isa::Opcode::Bne;
    si.src1 = 1;
    si.src2 = 2;
    Addr pc = 0x400040, target = 0x400000;
    // Strongly taken branch: after warmup no more Execute redirects.
    for (int i = 0; i < 512; ++i) {
        BranchPrediction bp = bu.onFetchBranch(pc, si, true, target);
        bu.onCommitBranch(bp, pc, si, target);
    }
    u64 before = bu.condMispredicts.value();
    for (int i = 0; i < 256; ++i) {
        BranchPrediction bp = bu.onFetchBranch(pc, si, true, target);
        bu.onCommitBranch(bp, pc, si, target);
    }
    EXPECT_EQ(bu.condMispredicts.value(), before);
}

TEST(BranchUnit, ReturnPredictedThroughRas)
{
    BranchUnit bu;
    isa::StaticInst call;
    call.op = isa::Opcode::Bl;
    call.dst = isa::linkReg;
    isa::StaticInst ret;
    ret.op = isa::Opcode::Ret;
    ret.src1 = isa::linkReg;

    Addr call_pc = 0x400100, func = 0x400800;
    Addr ret_pc = func + 16, ret_target = call_pc + 4;

    bu.onFetchBranch(call_pc, call, true, func);
    BranchPrediction bp = bu.onFetchBranch(ret_pc, ret, true, ret_target);
    EXPECT_EQ(bp.redirect, Redirect::None);
    EXPECT_EQ(bu.returnMispredicts.value(), 0u);
}

TEST(BranchUnit, IndirectLearnsLastTarget)
{
    BranchUnit bu;
    isa::StaticInst ind;
    ind.op = isa::Opcode::BrInd;
    ind.src1 = 3;
    Addr pc = 0x400200, t1 = 0x400800;
    BranchPrediction bp = bu.onFetchBranch(pc, ind, true, t1);
    EXPECT_EQ(bp.redirect, Redirect::Execute); // cold miss.
    bu.onCommitBranch(bp, pc, ind, t1);
    bp = bu.onFetchBranch(pc, ind, true, t1);
    EXPECT_EQ(bp.redirect, Redirect::None); // learned last target.
}

TEST(BranchUnit, HistoryRestoreOnSquash)
{
    BranchUnit bu;
    isa::StaticInst si;
    si.op = isa::Opcode::Beq;
    si.src1 = 1;
    si.src2 = 2;
    GlobalHist before = bu.history();
    auto ras_snap = bu.rasSnapshot();
    bu.onFetchBranch(0x400000, si, true, 0x400040);
    bu.onFetchBranch(0x400040, si, false, 0x400080);
    EXPECT_NE(bu.history().dir, before.dir);
    bu.restore(before, ras_snap);
    EXPECT_EQ(bu.history().dir, before.dir);
    EXPECT_EQ(bu.history().path, before.path);
}

TEST(GlobalHistTest, PathOnlyForUnconditional)
{
    GlobalHist h;
    u64 dir0 = h.dir;
    h.insertPath(0x400100);
    EXPECT_EQ(h.dir, dir0);
    EXPECT_NE(h.path, 0u);
}

TEST(GeoIndexing, DifferentHistoriesGiveDifferentIndices)
{
    GlobalHist a, b;
    a.insert(true, 0x400000);
    b.insert(false, 0x400000);
    int diffs = 0;
    for (Addr pc = 0x400000; pc < 0x400100; pc += 4)
        diffs += geoIndex(pc, a, 16, 10) != geoIndex(pc, b, 16, 10);
    EXPECT_GT(diffs, 32);
}

TEST(GeoIndexing, ZeroHistoryLengthIgnoresHistory)
{
    GlobalHist a, b;
    a.insert(true, 0x400000);
    // hist_len = 0 must not consult direction history.
    EXPECT_EQ(geoIndex(0x400800, a, 0, 10), geoIndex(0x400800, b, 0, 10));
}

} // namespace
} // namespace rsep::pred

/**
 * @file
 * Result-cache garbage-collection tests (`rsep_merge --gc`): filename
 * parsing, stale-hash removal against a live scenario set, quarantine
 * cleanup, the LRU-by-mtime size cap, dry runs, and the invariant that
 * a collected cache still serves its live records.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "common/fault.hh"
#include "sim/cache_gc.hh"
#include "sim/result_cache.hh"
#include "sim/scenario.hh"

namespace fs = std::filesystem;

namespace rsep::sim
{
namespace
{

std::string
scratchDir(const std::string &tag)
{
    std::string dir = (fs::temp_directory_path() /
                       ("rsep_gc_test_" + tag + "_" +
                        std::to_string(::getpid())))
                          .string();
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

PhaseResult
samplePhase()
{
    PhaseResult pr;
    pr.ipc = 1.25;
    pr.stats.cycles += 1000;
    pr.stats.committedInsts += 1250;
    pr.engineStats.emplace_back("engine.test.counter", 7);
    return pr;
}

/** Store one record and return its path. */
std::string
storeCell(ResultCache &cache, const std::string &bench,
          const std::string &hash, u32 phase)
{
    CacheKey key{bench, hash, phase, 0x5eed};
    EXPECT_TRUE(cache.store(key, samplePhase()));
    return cache.cellPath(key);
}

TEST(CacheGc, CellFileConfigHashParsing)
{
    EXPECT_EQ(cellFileConfigHash(
                  "2ca460ee67616cb1-p3-s0000000000005eed.cell"),
              "2ca460ee67616cb1");
    EXPECT_EQ(cellFileConfigHash(
                  "0123456789abcdef-p12-s00000000deadbeef.cell"),
              "0123456789abcdef");
    // Non-records parse to empty (and are never touched by the GC).
    EXPECT_EQ(cellFileConfigHash("README"), "");
    EXPECT_EQ(cellFileConfigHash("2ca460ee67616cb1-p3.cell"), "");
    EXPECT_EQ(cellFileConfigHash(
                  "XYZ460ee67616cb1-p3-s0000000000005eed.cell"),
              "");
    EXPECT_EQ(cellFileConfigHash(
                  "2ca460ee67616cb1-px-s0000000000005eed.cell"),
              "");
    EXPECT_EQ(cellFileConfigHash(
                  "2ca460ee67616cb1-p3-s0000000000005eed.corrupt"),
              "");
}

TEST(CacheGc, StaleRecordsAreRemovedLiveOnesKept)
{
    std::string dir = scratchDir("stale");
    ResultCache cache(dir);
    std::string live_hash = "aaaaaaaaaaaaaaaa";
    std::string dead_hash = "bbbbbbbbbbbbbbbb";
    std::string live0 = storeCell(cache, "mcf", live_hash, 0);
    std::string live1 = storeCell(cache, "hmmer", live_hash, 1);
    std::string dead0 = storeCell(cache, "mcf", dead_hash, 0);
    // A bystander file the GC must not touch.
    std::ofstream(dir + "/NOTES.txt") << "hands off\n";

    GcOptions opts;
    opts.cacheDir = dir;
    opts.liveHashes = {live_hash};
    GcReport report;
    ASSERT_EQ(runCacheGc(opts, report), "");
    EXPECT_EQ(report.scannedFiles, 3u);
    EXPECT_EQ(report.staleRemoved, 1u);
    EXPECT_EQ(report.keptFiles, 2u);
    EXPECT_TRUE(fs::exists(live0));
    EXPECT_TRUE(fs::exists(live1));
    EXPECT_FALSE(fs::exists(dead0));
    EXPECT_TRUE(fs::exists(dir + "/NOTES.txt"));

    // The surviving records still load.
    ResultCache reread(dir);
    CacheKey key{"mcf", live_hash, 0, 0x5eed};
    auto hit = reread.load(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(std::bit_cast<u64>(hit->ipc),
              std::bit_cast<u64>(samplePhase().ipc));
    fs::remove_all(dir);
}

TEST(CacheGc, EmptyLiveSetKeepsEverything)
{
    std::string dir = scratchDir("keepall");
    ResultCache cache(dir);
    storeCell(cache, "mcf", "aaaaaaaaaaaaaaaa", 0);
    storeCell(cache, "mcf", "bbbbbbbbbbbbbbbb", 0);

    GcOptions opts;
    opts.cacheDir = dir;
    GcReport report;
    ASSERT_EQ(runCacheGc(opts, report), "");
    EXPECT_EQ(report.staleRemoved, 0u);
    EXPECT_EQ(report.keptFiles, 2u);
    fs::remove_all(dir);
}

TEST(CacheGc, QuarantineDebrisIsCollected)
{
    std::string dir = scratchDir("corrupt");
    ResultCache cache(dir);
    std::string cell = storeCell(cache, "mcf", "aaaaaaaaaaaaaaaa", 0);
    std::ofstream(cell + ".corrupt") << "quarantined garbage\n";

    GcOptions opts;
    opts.cacheDir = dir;
    GcReport report;
    ASSERT_EQ(runCacheGc(opts, report), "");
    EXPECT_EQ(report.corruptRemoved, 1u);
    EXPECT_FALSE(fs::exists(cell + ".corrupt"));
    EXPECT_TRUE(fs::exists(cell));
    fs::remove_all(dir);
}

TEST(CacheGc, InjectedQuarantineAccumulationCollectsAndRepopulates)
{
    fault::disarmAll();
    std::string dir = scratchDir("quarantine_accum");
    ResultCache cache(dir);
    std::string hash = "cccccccccccccccc";
    std::string err;

    // Two torn publishes via fault injection, two loads: the loader
    // leaves two distinct .corrupt files — debris accumulates, it is
    // never silently overwritten.
    ASSERT_TRUE(fault::armFromSpec(
        "cache.write:fail=truncate:bytes=40:count=2", &err))
        << err;
    CacheKey k0{"mcf", hash, 0, 0x5eed};
    CacheKey k1{"mcf", hash, 1, 0x5eed};
    EXPECT_TRUE(cache.store(k0, samplePhase()));
    EXPECT_TRUE(cache.store(k1, samplePhase()));
    EXPECT_FALSE(cache.load(k0).has_value());
    EXPECT_FALSE(cache.load(k1).has_value());
    EXPECT_TRUE(fs::exists(cache.cellPath(k0) + ".corrupt"));
    EXPECT_TRUE(fs::exists(cache.cellPath(k1) + ".corrupt"));
    EXPECT_EQ(cache.counters().quarantined, 2u);

    // `rsep_merge --gc` removes exactly the quarantined files; the
    // live record survives.
    std::string live = storeCell(cache, "mcf", hash, 2);
    GcOptions opts;
    opts.cacheDir = dir;
    GcReport report;
    ASSERT_EQ(runCacheGc(opts, report), "");
    EXPECT_EQ(report.corruptRemoved, 2u);
    EXPECT_FALSE(fs::exists(cache.cellPath(k0) + ".corrupt"));
    EXPECT_FALSE(fs::exists(cache.cellPath(k1) + ".corrupt"));
    EXPECT_TRUE(fs::exists(live));

    // A re-run repopulates the collected cells and serves them again.
    EXPECT_TRUE(cache.store(k0, samplePhase()));
    EXPECT_TRUE(cache.store(k1, samplePhase()));
    EXPECT_TRUE(cache.load(k0).has_value());
    EXPECT_TRUE(cache.load(k1).has_value());
    fault::disarmAll();
    fs::remove_all(dir);
}

TEST(CacheGc, LruEvictsOldestUntilCapFits)
{
    std::string dir = scratchDir("lru");
    ResultCache cache(dir);
    std::string oldest = storeCell(cache, "mcf", "aaaaaaaaaaaaaaaa", 0);
    std::string middle = storeCell(cache, "mcf", "aaaaaaaaaaaaaaaa", 1);
    std::string newest = storeCell(cache, "mcf", "aaaaaaaaaaaaaaaa", 2);
    // Deterministic mtime order regardless of filesystem resolution.
    auto now = fs::last_write_time(newest);
    fs::last_write_time(oldest, now - std::chrono::hours(2));
    fs::last_write_time(middle, now - std::chrono::hours(1));

    u64 per_file = fs::file_size(newest);
    GcOptions opts;
    opts.cacheDir = dir;
    opts.maxBytes = 2 * per_file; // room for two of the three.
    GcReport report;
    ASSERT_EQ(runCacheGc(opts, report), "");
    EXPECT_EQ(report.lruRemoved, 1u);
    EXPECT_FALSE(fs::exists(oldest));
    EXPECT_TRUE(fs::exists(middle));
    EXPECT_TRUE(fs::exists(newest));
    EXPECT_EQ(report.keptFiles, 2u);
    EXPECT_LE(report.keptBytes, opts.maxBytes);
    fs::remove_all(dir);
}

TEST(CacheGc, DryRunRemovesNothing)
{
    std::string dir = scratchDir("dry");
    ResultCache cache(dir);
    std::string live = storeCell(cache, "mcf", "aaaaaaaaaaaaaaaa", 0);
    std::string dead = storeCell(cache, "mcf", "bbbbbbbbbbbbbbbb", 0);

    GcOptions opts;
    opts.cacheDir = dir;
    opts.liveHashes = {"aaaaaaaaaaaaaaaa"};
    opts.maxBytes = 1; // would evict everything if it acted.
    opts.dryRun = true;
    GcReport report;
    ASSERT_EQ(runCacheGc(opts, report), "");
    EXPECT_EQ(report.staleRemoved, 1u);
    EXPECT_GE(report.lruRemoved, 1u);
    EXPECT_TRUE(fs::exists(live));
    EXPECT_TRUE(fs::exists(dead));
    fs::remove_all(dir);
}

TEST(CacheGc, MissingDirectoryIsAnError)
{
    GcOptions opts;
    opts.cacheDir = "/nonexistent/rsep-gc-nowhere";
    GcReport report;
    EXPECT_NE(runCacheGc(opts, report), "");
    opts.cacheDir.clear();
    EXPECT_NE(runCacheGc(opts, report), "");
}

TEST(CacheGc, LiveHashesFromScenarioSetMatchRealRecords)
{
    // End-to-end shape of the rsep_merge --gc flow: records stored
    // under a real scenario's config hash survive a GC keyed by that
    // scenario; records under a perturbed config do not.
    std::string dir = scratchDir("scn");
    ResultCache cache(dir);
    SimConfig live_cfg = SimConfig::rsepIdeal();
    SimConfig dead_cfg = live_cfg;
    dead_cfg.checkpoints += 1;
    std::string live = storeCell(cache, "mcf", configHash(live_cfg), 0);
    std::string dead = storeCell(cache, "mcf", configHash(dead_cfg), 0);

    GcOptions opts;
    opts.cacheDir = dir;
    opts.liveHashes = {configHash(live_cfg)};
    GcReport report;
    ASSERT_EQ(runCacheGc(opts, report), "");
    EXPECT_TRUE(fs::exists(live));
    EXPECT_FALSE(fs::exists(dead));
    fs::remove_all(dir);
}

} // namespace
} // namespace rsep::sim

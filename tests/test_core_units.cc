/** @file Unit tests for core building blocks: FU/port arbiter and
 *  rename state (map table + free lists). */

#include <gtest/gtest.h>

#include <set>

#include "core/fu_pool.hh"
#include "core/rename.hh"

namespace rsep::core
{
namespace
{

using isa::OpClass;

TEST(FuPool, FourAluPortsPerCycle)
{
    FuPool fu((CoreParams()));
    fu.beginCycle(1);
    for (int i = 0; i < 4; ++i)
        EXPECT_GE(fu.tryIssue(OpClass::IntAlu), 0);
    EXPECT_EQ(fu.tryIssue(OpClass::IntAlu), -1); // 4 ALU ports max.
}

TEST(FuPool, GlobalIssueWidthEight)
{
    FuPool fu((CoreParams()));
    fu.beginCycle(1);
    unsigned granted = 0;
    // 4 ALU + 3 FP + 2 LdSt + 1 St = 10 ports but width is 8.
    for (int i = 0; i < 4; ++i)
        granted += fu.tryIssue(OpClass::IntAlu) >= 0;
    for (int i = 0; i < 3; ++i)
        granted += fu.tryIssue(OpClass::FpAlu) >= 0;
    for (int i = 0; i < 3; ++i)
        granted += fu.tryIssue(OpClass::Store) >= 0;
    EXPECT_EQ(granted, 8u);
}

TEST(FuPool, SingleMulAndDivPorts)
{
    FuPool fu((CoreParams()));
    fu.beginCycle(1);
    EXPECT_GE(fu.tryIssue(OpClass::IntMul), 0);
    EXPECT_EQ(fu.tryIssue(OpClass::IntMul), -1);
    EXPECT_GE(fu.tryIssue(OpClass::IntDiv), 0);
    EXPECT_EQ(fu.tryIssue(OpClass::IntDiv), -1);
    EXPECT_GE(fu.tryIssue(OpClass::FpDiv), 0);
    EXPECT_EQ(fu.tryIssue(OpClass::FpDiv), -1);
}

TEST(FuPool, UnpipelinedDividerBlocksAcrossCycles)
{
    FuPool fu((CoreParams()));
    fu.beginCycle(1);
    int port = fu.tryIssue(OpClass::IntDiv);
    ASSERT_GE(port, 0);
    fu.markUnpipelined(port, 26); // busy until cycle 26.
    fu.beginCycle(10);
    EXPECT_EQ(fu.tryIssue(OpClass::IntDiv), -1);
    fu.beginCycle(26);
    EXPECT_GE(fu.tryIssue(OpClass::IntDiv), 0);
}

TEST(FuPool, TwoLoadPortsOneExtraStorePort)
{
    FuPool fu((CoreParams()));
    fu.beginCycle(1);
    EXPECT_GE(fu.tryIssue(OpClass::Load), 0);
    EXPECT_GE(fu.tryIssue(OpClass::Load), 0);
    EXPECT_EQ(fu.tryIssue(OpClass::Load), -1); // 2 Ld/St ports used.
    EXPECT_GE(fu.tryIssue(OpClass::Store), 0); // store-only port free.
    EXPECT_EQ(fu.tryIssue(OpClass::Store), -1);
}

TEST(FuPool, ValidationLockFuUsesOwnClass)
{
    FuPool fu((CoreParams()));
    fu.beginCycle(1);
    // Exhaust load-capable ports.
    fu.tryIssue(OpClass::Load);
    fu.tryIssue(OpClass::Load);
    // Lock-FU validation of a load cannot issue (Fig. 6 pathology)...
    EXPECT_EQ(fu.tryIssueValidation(OpClass::Load, true), -1);
    // ...while any-FU validation can (bypass network, non-load port).
    EXPECT_GE(fu.tryIssueValidation(OpClass::Load, false), 0);
}

TEST(FuPool, ValidationAnyFuPrefersNonLoadPorts)
{
    FuPool fu((CoreParams()));
    fu.beginCycle(1);
    // Issue 7 validations any-FU: none should consume a load port.
    for (int i = 0; i < 7; ++i)
        EXPECT_GE(fu.tryIssueValidation(OpClass::IntAlu, false), 0);
    // Load ports still free for actual loads.
    EXPECT_GE(fu.tryIssue(OpClass::Load), 0);
}

TEST(RenameStateTest, InitialMappingsAndFreeCounts)
{
    CoreParams cp;
    RenameState rs(cp);
    EXPECT_EQ(rs.map(isa::zeroReg), zeroPreg);
    // 31 INT arch regs (excluding the zero reg) use pregs 1..31.
    EXPECT_EQ(rs.intFreeCount(), cp.intPregs - 32u);
    EXPECT_EQ(rs.fpFreeCount(), cp.fpPregs - 32u);
    // All initial mappings are distinct.
    std::set<PhysReg> seen;
    for (ArchReg r = 0; r < isa::numArchRegs; ++r)
        seen.insert(rs.map(r));
    EXPECT_EQ(seen.size(), 64u);
}

TEST(RenameStateTest, AllocateReleaseRoundTrip)
{
    RenameState rs((CoreParams()));
    size_t before = rs.intFreeCount();
    PhysReg p = rs.allocate(3);
    ASSERT_NE(p, invalidPhysReg);
    EXPECT_FALSE(rs.isFpPreg(p));
    EXPECT_EQ(rs.intFreeCount(), before - 1);
    rs.release(p);
    EXPECT_EQ(rs.intFreeCount(), before);
}

TEST(RenameStateTest, FpAllocationsComeFromFpPool)
{
    RenameState rs((CoreParams()));
    PhysReg p = rs.allocate(isa::fpRegBase + 3);
    ASSERT_NE(p, invalidPhysReg);
    EXPECT_TRUE(rs.isFpPreg(p));
}

TEST(RenameStateTest, ExhaustionReturnsInvalid)
{
    CoreParams cp;
    RenameState rs(cp);
    size_t n = rs.intFreeCount();
    for (size_t i = 0; i < n; ++i)
        ASSERT_NE(rs.allocate(1), invalidPhysReg);
    EXPECT_EQ(rs.allocate(1), invalidPhysReg);
    EXPECT_FALSE(rs.hasFree(1));
    EXPECT_TRUE(rs.hasFree(isa::fpRegBase + 1)); // FP pool untouched.
}

TEST(RenameStateTest, MapUpdateAndWalkUndo)
{
    RenameState rs((CoreParams()));
    PhysReg old = rs.map(5);
    PhysReg fresh = rs.allocate(5);
    rs.setMap(5, fresh);
    EXPECT_EQ(rs.map(5), fresh);
    // Walk-based undo restores the old mapping and frees the preg.
    rs.setMap(5, old);
    rs.release(fresh);
    EXPECT_EQ(rs.map(5), old);
}

} // namespace
} // namespace rsep::core

/** @file Tests for the RSEP structures: hash, HRF, FIFO history, DDT,
 *  ISRB, zero predictor, distance predictor, cost model. */

#include <gtest/gtest.h>

#include "rsep/costmodel.hh"
#include "rsep/ddt.hh"
#include "rsep/distance_pred.hh"
#include "rsep/fifo_history.hh"
#include "rsep/hash.hh"
#include "rsep/hrf.hh"
#include "rsep/isrb.hh"
#include "rsep/zero_pred.hh"

namespace rsep::equality
{
namespace
{

TEST(FoldHash, MatchesPaperExample)
{
    // 14-bit fold, equal values hash equal; 0 != -1 (Section IV-A).
    EXPECT_EQ(foldHash(0x1234), foldHash(0x1234));
    EXPECT_NE(foldHash(0), foldHash(~u64{0}));
    EXPECT_LE(foldHash(~u64{0}), mask(14));
}

TEST(Hrf, MirrorsPrfWrites)
{
    HashRegisterFile hrf(470, 14);
    hrf.write(3, 0x1abc);
    EXPECT_EQ(hrf.read(3), 0x1abc);
    EXPECT_EQ(hrf.read(4), 0u);
    EXPECT_EQ(hrf.writes.value(), 1u);
    EXPECT_EQ(hrf.reads.value(), 2u);
    EXPECT_EQ(hrf.storageBits(), 470u * 14);
}

TEST(CsnArithmetic, WraparoundDistance)
{
    EXPECT_EQ(csnDistance(5, 3), 2u);
    EXPECT_EQ(csnDistance(3, 1020), 7u); // wrapped young CSN.
    EXPECT_EQ(csnDistance(0, csnMask), 1u);
}

TEST(FifoHistory, NearestMatchWins)
{
    FifoHistory f(16);
    f.push(100, 1, 1, true, 0xaaaa);
    f.push(200, 2, 2, true, 0xbbbb);
    f.push(100, 3, 3, true, 0xaaaa);
    auto m = f.match(100, 5, std::nullopt);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->distance, 2u); // csn 3 is nearer than csn 1.
    EXPECT_EQ(m->producerSeq, 3u);
}

TEST(FifoHistory, PredictedDistancePreferred)
{
    // Section VI-A2: with the propagated predicted distance, the match
    // at that distance wins over the nearest one.
    FifoHistory f(16);
    f.push(100, 1, 1, true, 0x1);
    f.push(100, 3, 3, true, 0x2);
    auto m = f.match(100, 5, 4u); // prefers csn 1 (distance 4).
    ASSERT_TRUE(m.has_value());
    EXPECT_TRUE(m->matchedPredicted);
    EXPECT_EQ(m->distance, 4u);
    EXPECT_EQ(f.predictedDistanceMatches.value(), 1u);
}

TEST(FifoHistory, SelfAndWrappedEntriesIgnored)
{
    FifoHistory f(16);
    f.push(100, 7, 1, true, 0x1);
    // Same CSN (distance 0 = own entry): no match.
    EXPECT_FALSE(f.match(100, 7, std::nullopt).has_value());
    // An entry "younger" than the prober (wrapped distance beyond half
    // the CSN space): ignored.
    FifoHistory g(16);
    g.push(100, 250, 1, true, 0x1);
    EXPECT_FALSE(g.match(100, 200, std::nullopt).has_value());
}

TEST(FifoHistory, ExplicitVariantSkipsNonProducers)
{
    FifoHistory f(4, false);
    f.push(1, 1, 1, false); // branch/store: not pushed.
    EXPECT_EQ(f.size(), 0u);
    f.push(1, 2, 2, true);
    EXPECT_EQ(f.size(), 1u);
}

TEST(FifoHistory, ImplicitVariantPushesEverything)
{
    FifoHistory f(4, true);
    f.push(1, 1, 1, false);
    f.push(1, 2, 2, true);
    EXPECT_EQ(f.size(), 2u);
    // Non-producer entries never match.
    auto m = f.match(1, 5, std::nullopt);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->distance, 3u); // matched the producer at csn 2.
}

TEST(FifoHistory, DepthEviction)
{
    FifoHistory f(4);
    for (u32 i = 0; i < 6; ++i)
        f.push(50 + i, i, i, true);
    EXPECT_EQ(f.size(), 4u);
    // Oldest (hash 50, 51) evicted.
    EXPECT_FALSE(f.match(50, 10, std::nullopt).has_value());
    EXPECT_TRUE(f.match(53, 10, std::nullopt).has_value());
}

TEST(FifoHistory, ComparisonCountingForPowerStudy)
{
    FifoHistory f(8);
    for (u32 i = 0; i < 8; ++i)
        f.push(i, i, i, true);
    u64 before = f.comparisons.value();
    f.match(99, 20, std::nullopt); // no match: compares all 8.
    EXPECT_EQ(f.comparisons.value() - before, 8u);
}

TEST(FifoHistory, StorageMatchesPaper)
{
    // 128 entries x (14-bit hash + 10-bit CSN) = 384 bytes (VI-A2).
    FifoHistory f(128);
    EXPECT_EQ(f.storageBits(14), 128u * 24);
    EXPECT_EQ(f.storageBits(14) / 8, 384u);
}

TEST(Ddt, MatchAndDistance)
{
    Ddt ddt(256);
    EXPECT_FALSE(ddt.accessAndUpdate(10, 100, 1).has_value());
    auto m = ddt.accessAndUpdate(10, 105, 2);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->distance, 5u);
    EXPECT_EQ(m->producerSeq, 1u);
}

TEST(Ddt, OnlyMostRecentKept)
{
    Ddt ddt(256);
    ddt.accessAndUpdate(10, 100, 1);
    ddt.accessAndUpdate(10, 110, 2);
    auto m = ddt.accessAndUpdate(10, 115, 3);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->distance, 5u); // vs seq 2, not seq 1.
}

TEST(Ddt, HashCollisionsProduceFalsePairs)
{
    // The DDT is value-hash indexed: different hashes colliding on an
    // entry index alias (paper's "per chance" noise exists by design).
    Ddt ddt(16);
    ddt.accessAndUpdate(0x11, 100, 1);
    auto m = ddt.accessAndUpdate(0x21, 103, 2); // same index mod 16.
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->distance, 3u);
}

// ------------------------------- ISRB --------------------------------

TEST(IsrbTest, ShareReleaseLifecycle)
{
    Isrb isrb(4);
    EXPECT_FALSE(isrb.isShared(7));
    EXPECT_TRUE(isrb.share(7));    // producer + 1 sharer.
    EXPECT_TRUE(isrb.isShared(7));
    EXPECT_EQ(isrb.liveMappings(7), 2u);
    EXPECT_EQ(isrb.release(7), IsrbRelease::StillLive);
    EXPECT_EQ(isrb.release(7), IsrbRelease::Freed);
    EXPECT_FALSE(isrb.isShared(7));
}

TEST(IsrbTest, UnsharedReleaseReportsNotShared)
{
    Isrb isrb(4);
    EXPECT_EQ(isrb.release(3), IsrbRelease::NotShared);
}

TEST(IsrbTest, MultipleSharers)
{
    Isrb isrb(4);
    isrb.share(9);
    isrb.share(9);
    isrb.share(9); // 1 producer + 3 sharers.
    EXPECT_EQ(isrb.liveMappings(9), 4u);
    EXPECT_EQ(isrb.release(9), IsrbRelease::StillLive);
    EXPECT_EQ(isrb.release(9), IsrbRelease::StillLive);
    EXPECT_EQ(isrb.release(9), IsrbRelease::StillLive);
    EXPECT_EQ(isrb.release(9), IsrbRelease::Freed);
}

TEST(IsrbTest, CapacityRefusal)
{
    Isrb isrb(2);
    EXPECT_TRUE(isrb.share(1));
    EXPECT_TRUE(isrb.share(2));
    EXPECT_FALSE(isrb.share(3)); // full: no sharing (paper IV-E2).
    EXPECT_EQ(isrb.shareRefusalsFull.value(), 1u);
    EXPECT_EQ(isrb.entriesInUse(), 2u);
}

TEST(IsrbTest, CounterOverflowRefusal)
{
    Isrb isrb(2, 2); // 2-bit counters: max 3 references.
    EXPECT_TRUE(isrb.share(5));
    EXPECT_TRUE(isrb.share(5));
    EXPECT_FALSE(isrb.share(5)); // would exceed the counter.
    EXPECT_EQ(isrb.shareRefusalsOverflow.value(), 1u);
}

TEST(IsrbTest, SquashSharerDropsEntryWhenUnshared)
{
    Isrb isrb(4);
    isrb.share(3);
    EXPECT_EQ(isrb.squashSharer(3), IsrbRelease::StillLive);
    // Back to one (producer) mapping: entry dropped, register not
    // freed (it is still architecturally mapped).
    EXPECT_FALSE(isrb.isShared(3));
}

TEST(IsrbTest, SquashAfterProducerReleaseFrees)
{
    Isrb isrb(4);
    isrb.share(3);                 // refs: producer + sharer.
    EXPECT_EQ(isrb.release(3), IsrbRelease::StillLive); // producer gone.
    EXPECT_EQ(isrb.squashSharer(3), IsrbRelease::Freed); // sharer squashed.
}

TEST(IsrbTest, CheckpointRestoreRevertsSpeculativeSharers)
{
    Isrb isrb(4);
    isrb.share(6); // pre-checkpoint sharer.
    Isrb::Checkpoint cp = isrb.checkpoint();
    isrb.share(6);
    isrb.share(6); // speculative sharers.
    EXPECT_EQ(isrb.liveMappings(6), 4u);
    auto freed = isrb.restore(cp);
    EXPECT_TRUE(freed.empty());
    EXPECT_EQ(isrb.liveMappings(6), 2u);
}

TEST(IsrbTest, CheckpointRestoreFreesFullyCommittedEntry)
{
    // Paper: on restore, an entry whose committed count now covers its
    // references frees the register.
    Isrb isrb(4);
    isrb.share(8);
    Isrb::Checkpoint cp = isrb.checkpoint();
    isrb.share(8);                 // speculative sharer.
    isrb.release(8);               // producer mapping commits+releases.
    isrb.release(8);               // pre-checkpoint sharer releases.
    auto freed = isrb.restore(cp); // speculative sharer undone.
    ASSERT_EQ(freed.size(), 1u);
    EXPECT_EQ(freed[0], 8);
    EXPECT_FALSE(isrb.isShared(8));
}

TEST(IsrbTest, RestoreDropsEntriesAllocatedAfterCheckpoint)
{
    Isrb isrb(4);
    Isrb::Checkpoint cp = isrb.checkpoint();
    isrb.share(2); // allocated entirely after the checkpoint.
    auto freed = isrb.restore(cp);
    EXPECT_TRUE(freed.empty());
    EXPECT_FALSE(isrb.isShared(2));
}

TEST(IsrbTest, StorageIs63BytesFor24Entries)
{
    // Paper Section VI-B: 24 entries of two 6-bit counters tagged by
    // the preg id ~= 63 bytes.
    Isrb isrb(24, 6);
    EXPECT_EQ(isrb.storageBits(), 24u * (12 + 9));
    EXPECT_NEAR(isrb.storageBits() / 8.0, 63.0, 1.0);
}

class IsrbSizes : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(IsrbSizes, ConservationUnderRandomWorkload)
{
    // Property: for any entry, releases+squashes never exceed shares+1,
    // and freed entries disappear.
    Isrb isrb(GetParam());
    Rng rng(GetParam() * 7 + 1);
    std::vector<int> live(64, 0); // live mappings per preg (sim side).
    for (int step = 0; step < 20000; ++step) {
        PhysReg p = static_cast<PhysReg>(1 + rng.below(63));
        if (rng.chance(1, 2)) {
            if (isrb.share(p))
                live[p] = live[p] ? live[p] + 1 : 2;
        } else if (live[p] > 0) {
            IsrbRelease r = isrb.release(p);
            ASSERT_NE(r, IsrbRelease::NotShared);
            --live[p];
            if (live[p] == 0)
                ASSERT_EQ(r, IsrbRelease::Freed);
        }
        ASSERT_LE(isrb.entriesInUse(), isrb.capacity());
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IsrbSizes,
                         ::testing::Values(2u, 8u, 24u, 64u));

// --------------------------- zero predictor ---------------------------

TEST(ZeroPred, SaturatesOnAlwaysZero)
{
    ZeroPredictor zp;
    Rng rng(3);
    Addr pc = 0x400100;
    for (int i = 0; i < 255; ++i) {
        EXPECT_FALSE(zp.predict(pc));
        zp.update(pc, true, &rng);
    }
    EXPECT_TRUE(zp.predict(pc));
    zp.update(pc, false, &rng);
    EXPECT_FALSE(zp.predict(pc)); // reset on non-zero.
}

TEST(ZeroPred, IntermittentZeroNeverPredicts)
{
    ZeroPredictor zp;
    Rng rng(4);
    Addr pc = 0x400200;
    for (int i = 0; i < 5000; ++i)
        zp.update(pc, i % 3 != 0, &rng);
    EXPECT_FALSE(zp.predict(pc));
}

// -------------------------- distance predictor ------------------------

TEST(DistancePred, PaperStorageNumbers)
{
    // Section IV-C: 42.6KB ideal; Section VI-B: ~10.1KB realistic.
    DistancePredictor ideal(DistancePredictorParams::ideal());
    DistancePredictor real(DistancePredictorParams::realistic());
    EXPECT_NEAR(ideal.storageBits() / 8.0 / 1024.0, 42.6, 0.5);
    EXPECT_NEAR(real.storageBits() / 8.0 / 1024.0, 10.1, 0.5);
}

TEST(DistancePred, LearnsStableDistance)
{
    DistancePredictor dp;
    pred::GlobalHist h;
    Addr pc = 0x400300;
    for (int i = 0; i < 300; ++i) {
        DistLookup lk = dp.lookup(pc, h);
        dp.train(lk, 7);
    }
    DistLookup lk = dp.lookup(pc, h);
    EXPECT_TRUE(lk.usePred);
    EXPECT_EQ(lk.distance, 7u);
}

TEST(DistancePred, ZeroDistanceNeverUsable)
{
    DistancePredictor dp;
    pred::GlobalHist h;
    Addr pc = 0x400400;
    for (int i = 0; i < 300; ++i) {
        DistLookup lk = dp.lookup(pc, h);
        dp.train(lk, 0); // "no pair found" training.
    }
    EXPECT_FALSE(dp.lookup(pc, h).usePred);
}

TEST(DistancePred, TrainIncorrectCollapsesConfidence)
{
    DistancePredictor dp;
    pred::GlobalHist h;
    Addr pc = 0x400500;
    for (int i = 0; i < 300; ++i) {
        DistLookup lk = dp.lookup(pc, h);
        dp.train(lk, 5);
    }
    DistLookup lk = dp.lookup(pc, h);
    ASSERT_TRUE(lk.usePred);
    dp.trainIncorrect(lk);
    EXPECT_FALSE(dp.lookup(pc, h).usePred);
}

// ------------------------------ cost model ----------------------------

TEST(CostModel, PaperTotals)
{
    // Realistic config: ~10.8KB total excluding the HRF (Section VI-B).
    RsepConfig cfg = RsepConfig::realistic();
    RsepStorage s = computeStorage(cfg, 470, 192);
    EXPECT_NEAR(s.predictorKB, 10.1, 0.3);
    EXPECT_NEAR(s.fifoHistoryB, 384.0, 1.0);
    EXPECT_NEAR(s.distanceFifoB, 224.0, 1.0);
    EXPECT_NEAR(s.isrbB, 63.0, 1.0);
    EXPECT_NEAR(s.totalKB, 10.8, 0.3);
}

TEST(CostModel, IdealPredictorIs42KB)
{
    RsepConfig cfg = RsepConfig::idealLarge();
    RsepStorage s = computeStorage(cfg, 470, 192);
    EXPECT_NEAR(s.predictorKB, 42.6, 0.5);
}

TEST(CostModel, FifoComparatorsMatchPaper)
{
    // Section IV-B2: 256-entry FIFO at commit width 8 -> 2076.
    EXPECT_EQ(fifoComparators(256, 8), 2076u);
    // Section VI-A2: 128-entry FIFO -> 1024 + 28.
    EXPECT_EQ(fifoComparators(128, 8), 1052u);
}

TEST(CostModel, HrfAreaUnderFivePercent)
{
    // Section IV-D1: banked 14-bit HRF vs 64-bit 16R/8W PRF.
    double frac = hrfAreaFraction(16, 8, 64, 8, 8, 14);
    EXPECT_LT(frac, 0.05);
    EXPECT_GT(frac, 0.0);
}

TEST(CostModel, DescribeMentionsComponents)
{
    std::string d = describeStorage(RsepConfig::realistic(), 470, 192);
    EXPECT_NE(d.find("distance predictor"), std::string::npos);
    EXPECT_NE(d.find("ISRB"), std::string::npos);
    EXPECT_NE(d.find("HRF"), std::string::npos);
}

} // namespace
} // namespace rsep::equality

/**
 * @file
 * Determinism tests for the parallel experiment matrix: runMatrix must
 * produce bit-identical MatrixRow contents at any thread count, because
 * every (benchmark, config, checkpoint) cell is independently seeded
 * and writes a preassigned output slot.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>

#include "sim/runner.hh"
#include "sim/thread_pool.hh"

namespace rsep::sim
{
namespace
{

SimConfig
shrunk(SimConfig c)
{
    c.warmupInsts = 4'000;
    c.measureInsts = 12'000;
    c.checkpoints = 2;
    c.seed = 0x5eed;
    return c;
}

void
expectIdentical(const std::vector<MatrixRow> &a,
                const std::vector<MatrixRow> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t r = 0; r < a.size(); ++r) {
        SCOPED_TRACE(a[r].benchmark);
        EXPECT_EQ(a[r].benchmark, b[r].benchmark);
        ASSERT_EQ(a[r].byConfig.size(), b[r].byConfig.size());
        for (size_t c = 0; c < a[r].byConfig.size(); ++c) {
            const RunResult &x = a[r].byConfig[c];
            const RunResult &y = b[r].byConfig[c];
            SCOPED_TRACE(x.configLabel);
            EXPECT_EQ(x.configLabel, y.configLabel);
            ASSERT_EQ(x.phases.size(), y.phases.size());
            for (size_t p = 0; p < x.phases.size(); ++p) {
                // Bit-identical, not approximately equal: the same
                // cell runs the same deterministic simulation whatever
                // thread it lands on.
                EXPECT_EQ(x.phases[p].ipc, y.phases[p].ipc);
                EXPECT_EQ(x.phases[p].stats.cycles.value(),
                          y.phases[p].stats.cycles.value());
                EXPECT_EQ(x.phases[p].stats.committedInsts.value(),
                          y.phases[p].stats.committedInsts.value());
                EXPECT_EQ(x.phases[p].stats.rsepCorrect.value(),
                          y.phases[p].stats.rsepCorrect.value());
                EXPECT_EQ(x.phases[p].stats.rsepMispredicts.value(),
                          y.phases[p].stats.rsepMispredicts.value());
                EXPECT_EQ(x.phases[p].stats.commitSquashes.value(),
                          y.phases[p].stats.commitSquashes.value());
                EXPECT_EQ(x.phases[p].stats.committedBranches.value(),
                          y.phases[p].stats.committedBranches.value());
            }
        }
    }
}

TEST(RunnerParallel, MatrixIsThreadCountInvariant)
{
    std::vector<SimConfig> configs = {shrunk(SimConfig::baseline()),
                                      shrunk(SimConfig::rsepRealistic())};
    std::vector<std::string> benches = {"namd", "hmmer", "mcf"};

    MatrixOptions serial;
    serial.jobs = 1;
    serial.progress = false;
    MatrixOptions wide;
    wide.jobs = 4;
    wide.progress = false;

    auto rows1 = runMatrix(configs, benches, serial);
    auto rows4 = runMatrix(configs, benches, wide);
    expectIdentical(rows1, rows4);
}

TEST(RunnerParallel, WindowStealGranularityIsBitIdentical)
{
    // `--steal window` batches a run's checkpoints into one pool task;
    // results must stay bit-identical to per-cell stealing at any
    // thread count (only wall-clock may differ).
    std::vector<SimConfig> configs = {shrunk(SimConfig::baseline()),
                                      shrunk(SimConfig::rsepRealistic())};
    std::vector<std::string> benches = {"namd", "hmmer"};

    MatrixOptions cell;
    cell.jobs = 1;
    cell.progress = false;
    MatrixOptions window;
    window.jobs = 4;
    window.progress = false;
    window.steal = StealMode::Window;

    auto by_cell = runMatrix(configs, benches, cell);
    auto by_window = runMatrix(configs, benches, window);
    expectIdentical(by_cell, by_window);
    // The steal mode is recorded in the run timing so `--timings`
    // summaries stay self-describing.
    EXPECT_EQ(by_cell[0].byConfig[0].timing.stealWindow.value(), 0u);
    EXPECT_EQ(by_window[0].byConfig[0].timing.stealWindow.value(), 1u);
}

TEST(RunnerParallel, StealValueParsing)
{
    StealMode mode = StealMode::Cell;
    std::string err;
    EXPECT_TRUE(parseStealValue("window", mode, err));
    EXPECT_EQ(mode, StealMode::Window);
    EXPECT_TRUE(parseStealValue("cell", mode, err));
    EXPECT_EQ(mode, StealMode::Cell);
    EXPECT_FALSE(parseStealValue("row", mode, err));
    EXPECT_NE(err.find("steal granularity"), std::string::npos);
}

TEST(RunnerParallel, MatrixMatchesSerialRunWorkload)
{
    SimConfig cfg = shrunk(SimConfig::rsepRealistic());
    MatrixOptions wide;
    wide.jobs = 3;
    wide.progress = false;
    auto rows = runMatrix({cfg}, {"hmmer"}, wide);
    RunResult serial = runWorkload(cfg, "hmmer");
    ASSERT_EQ(rows.size(), 1u);
    ASSERT_EQ(rows[0].byConfig.size(), 1u);
    const RunResult &par = rows[0].byConfig[0];
    ASSERT_EQ(par.phases.size(), serial.phases.size());
    for (size_t p = 0; p < par.phases.size(); ++p) {
        EXPECT_EQ(par.phases[p].ipc, serial.phases[p].ipc);
        EXPECT_EQ(par.phases[p].stats.cycles.value(),
                  serial.phases[p].stats.cycles.value());
    }
    EXPECT_EQ(par.ipcHmean(), serial.ipcHmean());
}

TEST(RunnerParallel, ThreadPoolRunsAllTasksAcrossWorkers)
{
    ThreadPool pool(4);
    std::atomic<int> hits{0};
    for (int i = 0; i < 256; ++i)
        pool.submit([&hits] { ++hits; });
    pool.wait();
    EXPECT_EQ(hits.load(), 256);
    // The pool is reusable after a wait().
    for (int i = 0; i < 32; ++i)
        pool.submit([&hits] { ++hits; });
    pool.wait();
    EXPECT_EQ(hits.load(), 288);
}

TEST(RunnerParallel, JobsResolution)
{
    EXPECT_EQ(resolveJobs(7), 7u);
    EXPECT_GE(resolveJobs(0), 1u);

    const char *argv1[] = {"prog", "--jobs", "5"};
    EXPECT_EQ(parseJobsArg(3, const_cast<char **>(argv1)), 5u);
    const char *argv2[] = {"prog", "--jobs=9"};
    EXPECT_EQ(parseJobsArg(2, const_cast<char **>(argv2)), 9u);
    const char *argv3[] = {"prog", "-j3"};
    EXPECT_EQ(parseJobsArg(2, const_cast<char **>(argv3)), 3u);
    const char *argv4[] = {"prog", "other"};
    EXPECT_EQ(parseJobsArg(2, const_cast<char **>(argv4)), 0u);
}

TEST(RunnerParallel, JobsParsingRejectsMalformedValues)
{
    unsigned jobs = 0;
    std::string err;

    EXPECT_TRUE(parseJobsValue("12", jobs, err));
    EXPECT_EQ(jobs, 12u);
    EXPECT_TRUE(parseJobsValue("0", jobs, err)); // explicit auto.
    EXPECT_EQ(jobs, 0u);

    // Non-numeric, negative, trailing garbage, overflowing and absurd
    // values produce a diagnostic instead of silently becoming 0/auto.
    for (const char *bad :
         {"abc", "-3", "4x", "", "99999999999999999999", "4097"}) {
        err.clear();
        EXPECT_FALSE(parseJobsValue(bad, jobs, err)) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }

    auto scan = [&](std::vector<const char *> args) {
        args.insert(args.begin(), "prog");
        jobs = 0;
        err.clear();
        return parseJobsArg(static_cast<int>(args.size()),
                            const_cast<char **>(args.data()), jobs, err);
    };
    EXPECT_TRUE(scan({"--jobs", "6"}));
    EXPECT_EQ(jobs, 6u);
    EXPECT_FALSE(scan({"--jobs", "abc"}));
    EXPECT_NE(err.find("invalid jobs count"), std::string::npos);
    EXPECT_FALSE(scan({"--jobs=1e3"}));
    EXPECT_FALSE(scan({"-jfast"}));
    EXPECT_FALSE(scan({"--jobs"})); // dangling flag.
    EXPECT_NE(err.find("requires a value"), std::string::npos);
    EXPECT_TRUE(scan({"unrelated"})); // absent: stays auto.
    EXPECT_EQ(jobs, 0u);
}

TEST(RunnerParallel, MalformedRsepJobsEnvFallsBackToAuto)
{
    setenv("RSEP_JOBS", "not-a-number", 1);
    EXPECT_GE(resolveJobs(0), 1u); // warns, then auto.
    setenv("RSEP_JOBS", "999999999", 1);
    unsigned resolved = resolveJobs(0);
    EXPECT_GE(resolved, 1u);
    EXPECT_LE(resolved, maxJobs); // absurd values are not honoured.
    setenv("RSEP_JOBS", "3", 1);
    EXPECT_EQ(resolveJobs(0), 3u);
    unsetenv("RSEP_JOBS");
}

} // namespace
} // namespace rsep::sim

/**
 * @file
 * Oracle-equality engine tests: the limit-study arm shares without
 * ever mispredicting, books coverage into the Fig. 5 counters, stays
 * deterministic across thread counts, and is reachable both from the
 * scenario registry (`rsep-oracle`) and from scenario files
 * (`oracle_eq = true`).
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "sim/scenario.hh"

namespace rsep::sim
{
namespace
{

SimConfig
shrunkOracle()
{
    auto sc = findScenario("rsep-oracle");
    EXPECT_TRUE(sc.has_value());
    SimConfig c = sc->config;
    c.warmupInsts = 2'000;
    c.measureInsts = 8'000;
    c.checkpoints = 1;
    c.seed = 0x5eed;
    return c;
}

u64
engineStat(const PhaseResult &pr, const std::string &name)
{
    for (const auto &[n, v] : pr.engineStats)
        if (n == name)
            return v;
    return 0;
}

TEST(OracleEq, RegisteredScenarioEnablesTheEngine)
{
    auto sc = findScenario("rsep-oracle");
    ASSERT_TRUE(sc.has_value());
    EXPECT_TRUE(sc->config.mech.oracleEq);
    EXPECT_FALSE(sc->config.mech.equalityPred)
        << "the oracle replaces the predictor, not rides beside it";
    EXPECT_TRUE(sc->config.mech.moveElim);
    // Factory-name and short aliases resolve too.
    EXPECT_TRUE(findScenario("rsepOracle").has_value());
    EXPECT_TRUE(findScenario("oracle-eq").has_value());
}

TEST(OracleEq, SharesWithoutEverMispredicting)
{
    SimConfig cfg = shrunkOracle();
    for (const char *bench : {"hmmer", "omnetpp", "xalancbmk"}) {
        PhaseResult pr = runPhase(cfg, bench, 0);
        u64 shared = engineStat(pr, "engine.oracle-eq.shared");
        EXPECT_GT(shared, 0u) << bench;
        // Oracle coverage lands in the Fig. 5 distance-prediction
        // counters, like the real engine's.
        EXPECT_EQ(pr.stats.distPredLoad.value() +
                      pr.stats.distPredOther.value(),
                  shared)
            << bench;
        EXPECT_EQ(pr.stats.rsepCorrect.value(), shared) << bench;
        // Perfect knowledge: no equality mispredictions, hence no
        // equality-triggered commit squashes.
        EXPECT_EQ(pr.stats.rsepMispredicts.value(), 0u) << bench;
        EXPECT_EQ(pr.stats.commitSquashes.value(), 0u) << bench;
    }
}

TEST(OracleEq, IsAnUpperBoundOnCoverage)
{
    // The oracle must cover at least what the trained predictor
    // covers: it sees every equal pair the FIFO history can surface.
    SimConfig oracle = shrunkOracle();
    auto rsep = findScenario("rsep");
    ASSERT_TRUE(rsep.has_value());
    SimConfig real = rsep->config;
    real.warmupInsts = oracle.warmupInsts;
    real.measureInsts = oracle.measureInsts;
    real.checkpoints = oracle.checkpoints;
    real.seed = oracle.seed;

    for (const char *bench : {"omnetpp", "xalancbmk"}) {
        PhaseResult po = runPhase(oracle, bench, 0);
        PhaseResult pr = runPhase(real, bench, 0);
        EXPECT_GE(po.stats.rsepCorrect.value(),
                  pr.stats.rsepCorrect.value())
            << bench;
    }
}

TEST(OracleEq, MatrixIsThreadCountInvariant)
{
    SimConfig cfg = shrunkOracle();
    cfg.checkpoints = 2;
    MatrixOptions serial, wide;
    serial.jobs = 1;
    serial.progress = false;
    wide.jobs = 4;
    wide.progress = false;

    auto r1 = runMatrix({cfg}, {"omnetpp"}, serial);
    auto r4 = runMatrix({cfg}, {"omnetpp"}, wide);
    ASSERT_EQ(r1[0].byConfig[0].phases.size(),
              r4[0].byConfig[0].phases.size());
    for (size_t p = 0; p < r1[0].byConfig[0].phases.size(); ++p) {
        EXPECT_EQ(r1[0].byConfig[0].phases[p].ipc,
                  r4[0].byConfig[0].phases[p].ipc);
        EXPECT_EQ(r1[0].byConfig[0].phases[p].stats.cycles.value(),
                  r4[0].byConfig[0].phases[p].stats.cycles.value());
    }
}

TEST(OracleEq, ScenarioFileToggleWorks)
{
    ScenarioParse p = parseScenarioText("[scenario]\n"
                                        "name = oracle-from-file\n"
                                        "base = baseline\n"
                                        "[mech]\n"
                                        "oracle_eq = true\n"
                                        "move_elim = true\n",
                                        "t.scn");
    ASSERT_TRUE(p.ok()) << p.error;
    ASSERT_EQ(p.scenarios.size(), 1u);
    EXPECT_TRUE(p.scenarios[0].config.mech.oracleEq);

    // The registered arm round-trips the text format losslessly (its
    // oracle_eq key serializes and re-parses).
    auto sc = findScenario("rsep-oracle");
    ASSERT_TRUE(sc.has_value());
    ScenarioParse p2 = parseScenarioText(serializeScenario(*sc), "rt");
    ASSERT_TRUE(p2.ok()) << p2.error;
    EXPECT_EQ(configHash(p2.scenarios[0].config), configHash(sc->config));
    EXPECT_TRUE(p2.scenarios[0].config.mech.oracleEq);
}

} // namespace
} // namespace rsep::sim

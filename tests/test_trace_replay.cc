/**
 * @file
 * Recorded-trace tests: the `.rtr` round-trip is bit-exact, every
 * corruption class is rejected with a diagnostic (never a partial
 * parse), and — the invariant the record/replay subsystem exists for —
 * replaying a recorded trace reproduces the live-emulation PhaseResult
 * bit for bit, through runPhase and through a full runMatrix.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "sim/runner.hh"
#include "sim/scenario.hh"
#include "wl/emulator.hh"
#include "wl/trace_io.hh"
#include "wl/workload_spec.hh"

namespace fs = std::filesystem;

namespace rsep
{
namespace
{

/** Fresh scratch directory per test. */
std::string
scratchDir(const std::string &tag)
{
    std::string dir = (fs::temp_directory_path() /
                       ("rsep_trace_test_" + tag + "_" +
                        std::to_string(::getpid())))
                          .string();
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::vector<wl::DynRecord>
sampleRecords(size_t n)
{
    std::vector<wl::DynRecord> recs;
    for (size_t i = 0; i < n; ++i) {
        wl::DynRecord r;
        r.staticIdx = static_cast<u32>(i % 37);
        r.nextIdx = static_cast<u32>((i + 1) % 37);
        r.result = 0x0123456789abcdefull ^ (static_cast<u64>(i) << 17);
        r.effAddr = i % 3 ? 0x10000000 + i * 8 : 0;
        r.taken = i % 5 == 0;
        recs.push_back(r);
    }
    return recs;
}

wl::TraceHeader
sampleHeader(u64 records)
{
    wl::TraceHeader h;
    h.workload = "sample";
    h.workloadHash = "0123456789abcdef";
    h.phase = 2;
    h.programLength = 37;
    h.records = records;
    return h;
}

TEST(TraceIo, RoundTripIsBitExact)
{
    auto recs = sampleRecords(1000);
    std::string image = wl::serializeTrace(sampleHeader(recs.size()), recs);
    wl::TraceParse parsed = wl::parseTrace(image, "<mem>");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(parsed.header.workload, "sample");
    EXPECT_EQ(parsed.header.workloadHash, "0123456789abcdef");
    EXPECT_EQ(parsed.header.phase, 2u);
    EXPECT_EQ(parsed.header.programLength, 37u);
    ASSERT_EQ(parsed.records.size(), recs.size());
    for (size_t i = 0; i < recs.size(); ++i) {
        EXPECT_EQ(parsed.records[i].staticIdx, recs[i].staticIdx) << i;
        EXPECT_EQ(parsed.records[i].nextIdx, recs[i].nextIdx) << i;
        EXPECT_EQ(parsed.records[i].result, recs[i].result) << i;
        EXPECT_EQ(parsed.records[i].effAddr, recs[i].effAddr) << i;
        EXPECT_EQ(parsed.records[i].taken, recs[i].taken) << i;
    }
    // Serializing the parse reproduces the image byte for byte.
    EXPECT_EQ(wl::serializeTrace(parsed.header, parsed.records), image);
}

TEST(TraceIo, FileRoundTripAndHeaderOnly)
{
    std::string dir = scratchDir("file_rt");
    auto recs = sampleRecords(64);
    std::string path = wl::tracePath(dir, "sample", 2);
    EXPECT_EQ(path, dir + "/sample-p2.rtr");
    std::string err;
    ASSERT_TRUE(
        wl::writeTraceFile(path, sampleHeader(recs.size()), recs, &err))
        << err;

    wl::TraceParse full = wl::readTraceFile(path);
    ASSERT_TRUE(full.ok()) << full.error;
    EXPECT_EQ(full.records.size(), 64u);

    wl::TraceParse head = wl::readTraceFile(path, /*header_only=*/true);
    ASSERT_TRUE(head.ok()) << head.error;
    EXPECT_EQ(head.header.records, 64u);
    EXPECT_TRUE(head.records.empty());

    fs::remove_all(dir);
}

TEST(TraceIo, CorruptionIsRejectedWithDiagnostics)
{
    auto recs = sampleRecords(50);
    std::string image = wl::serializeTrace(sampleHeader(recs.size()), recs);

    auto errOf = [](std::string img) {
        return wl::parseTrace(img, "<bad>").error;
    };

    // Version mismatch.
    std::string v = image;
    v[11] = '9'; // "rsep-trace 1" -> "rsep-trace 9"
    EXPECT_NE(errOf(v).find("version"), std::string::npos);

    // Flipped payload byte -> checksum mismatch.
    std::string flip = image;
    flip[image.find("payload\n") + 8 + 100] ^= 0x40;
    EXPECT_NE(errOf(flip).find("checksum mismatch"), std::string::npos);

    // Truncation (drop the trailer and part of the payload).
    EXPECT_NE(errOf(image.substr(0, image.size() - 60))
                  .find("truncated"),
              std::string::npos);

    // Record-count lie.
    std::string lie = image;
    size_t at = lie.find("records = 50");
    lie.replace(at, 12, "records = 51");
    EXPECT_FALSE(wl::parseTrace(lie, "<bad>").ok());

    // Empty / garbage input.
    EXPECT_FALSE(wl::parseTrace("", "<bad>").ok());
    EXPECT_FALSE(wl::parseTrace("not a trace\n", "<bad>").ok());
}

TEST(TraceIo, RecordingSourceTeesAndSlack)
{
    wl::Workload w = wl::makeWorkload("lbm");
    wl::Emulator emu(w.program);
    emu.resetArchState();
    w.init(emu, 0);
    wl::RecordingTraceSource rec(emu);
    for (int i = 0; i < 100; ++i)
        rec.step();
    EXPECT_EQ(rec.records().size(), 100u);
    rec.recordSlack(40);
    EXPECT_EQ(rec.records().size(), 140u);
    // Slack continued the same architectural stream.
    wl::Emulator ref(w.program);
    ref.resetArchState();
    wl::Workload w2 = wl::makeWorkload("lbm");
    w2.init(ref, 0);
    for (size_t i = 0; i < 140; ++i) {
        const wl::DynRecord &want = ref.step();
        EXPECT_EQ(rec.records()[i].staticIdx, want.staticIdx) << i;
        EXPECT_EQ(rec.records()[i].result, want.result) << i;
    }
}

TEST(TraceIo, V1StaysReadableAndMatchesV2Content)
{
    auto recs = sampleRecords(500);
    wl::TraceHeader h1 = sampleHeader(recs.size());
    h1.version = 1;
    std::string v1 = wl::serializeTrace(h1, recs);
    wl::TraceHeader h2 = sampleHeader(recs.size());
    h2.version = 2;
    std::string v2 = wl::serializeTrace(h2, recs);

    EXPECT_NE(v1.substr(0, 12), v2.substr(0, 12)); // version line.
    wl::TraceParse p1 = wl::parseTrace(v1, "<v1>");
    wl::TraceParse p2 = wl::parseTrace(v2, "<v2>");
    ASSERT_TRUE(p1.ok()) << p1.error;
    ASSERT_TRUE(p2.ok()) << p2.error;
    EXPECT_EQ(p1.header.version, 1u);
    EXPECT_EQ(p2.header.version, 2u);
    ASSERT_EQ(p1.records.size(), p2.records.size());
    for (size_t i = 0; i < p1.records.size(); ++i) {
        EXPECT_EQ(p1.records[i].staticIdx, p2.records[i].staticIdx) << i;
        EXPECT_EQ(p1.records[i].nextIdx, p2.records[i].nextIdx) << i;
        EXPECT_EQ(p1.records[i].result, p2.records[i].result) << i;
        EXPECT_EQ(p1.records[i].effAddr, p2.records[i].effAddr) << i;
        EXPECT_EQ(p1.records[i].taken, p2.records[i].taken) << i;
    }
    // Old files keep re-serializing as their own version (a reader
    // that rewrites must not silently re-encode).
    EXPECT_EQ(wl::serializeTrace(p1.header, p1.records), v1);
}

TEST(TraceIo, V2ExtremeValuesRoundTrip)
{
    // Adversarial records for the varint/delta coder: max values,
    // backward next-branches, alternating zero/non-zero, repeated and
    // wildly-jumping results and addresses.
    std::vector<wl::DynRecord> recs;
    auto add = [&](u32 si, u32 ni, u64 res, u64 ea, bool tk) {
        wl::DynRecord r;
        r.staticIdx = si;
        r.nextIdx = ni;
        r.result = res;
        r.effAddr = ea;
        r.taken = tk;
        recs.push_back(r);
    };
    add(0xffffffff, 0, ~u64{0}, ~u64{0}, true);      // max everything.
    add(0, 0xffffffff, 0, 0, false);                 // max forward jump.
    add(5, 2, 1, 8, true);                           // backward branch.
    add(2, 3, 1, 0, false);                          // repeated result.
    add(3, 4, 0x8000000000000000ull, 16, false);     // sign-bit delta.
    add(4, 5, 1, ~u64{0} - 7, false);                // huge addr delta.
    for (u64 i = 0; i < 300; ++i)                    // dense typical run.
        add(static_cast<u32>(i % 7), static_cast<u32>((i + 1) % 7),
            i % 4 ? i : 0, i % 3 ? 0x1000 + 8 * (i % 16) : 0,
            i % 9 == 0);
    wl::TraceHeader h = sampleHeader(recs.size());
    h.version = 2;
    std::string image = wl::serializeTrace(h, recs);
    wl::TraceParse p = wl::parseTrace(image, "<mem>");
    ASSERT_TRUE(p.ok()) << p.error;
    ASSERT_EQ(p.records.size(), recs.size());
    for (size_t i = 0; i < recs.size(); ++i) {
        EXPECT_EQ(p.records[i].staticIdx, recs[i].staticIdx) << i;
        EXPECT_EQ(p.records[i].nextIdx, recs[i].nextIdx) << i;
        EXPECT_EQ(p.records[i].result, recs[i].result) << i;
        EXPECT_EQ(p.records[i].effAddr, recs[i].effAddr) << i;
        EXPECT_EQ(p.records[i].taken, recs[i].taken) << i;
    }
}

TEST(TraceIo, V2CutsRealTraceSizeSeveralFold)
{
    // The point of the encoding: a real committed-path stream shrinks
    // several-fold against the 25-byte raw records.
    wl::Workload w = wl::makeWorkload("hmmer");
    wl::Emulator emu(w.program);
    emu.resetArchState();
    w.init(emu, 0);
    wl::RecordingTraceSource rec(emu);
    for (int i = 0; i < 20000; ++i)
        rec.step();
    wl::TraceHeader h = sampleHeader(rec.records().size());
    h.programLength = w.program.size();
    h.version = 1;
    std::string v1 = wl::serializeTrace(h, rec.records());
    h.version = 2;
    std::string v2 = wl::serializeTrace(h, rec.records());
    EXPECT_LT(v2.size() * 3, v1.size())
        << "v2 should be at least 3x smaller on a real stream "
        << "(v1 " << v1.size() << "B, v2 " << v2.size() << "B)";
    wl::TraceParse p = wl::parseTrace(v2, "<mem>");
    ASSERT_TRUE(p.ok()) << p.error;
    EXPECT_EQ(p.records.size(), rec.records().size());
}

sim::SimConfig
tinyConfig()
{
    sim::SimConfig cfg = sim::SimConfig::rsepIdeal();
    cfg.warmupInsts = 2'000;
    cfg.measureInsts = 6'000;
    cfg.checkpoints = 2;
    cfg.seed = 0x5eed;
    return cfg;
}

void
expectSamePhase(const sim::PhaseResult &a, const sim::PhaseResult &b)
{
    // Bit-exact IPC and identical counter sets: the whole point of
    // replay is that no stat dump can tell the difference.
    EXPECT_EQ(std::bit_cast<u64>(a.ipc), std::bit_cast<u64>(b.ipc));
    sim::PhaseResult am = a, bm = b;
    std::vector<std::pair<std::string, u64>> ac, bc;
    visitStats(am.stats, [&](const char *n, StatCounter &c) {
        ac.emplace_back(n, c.value());
    });
    visitStats(bm.stats, [&](const char *n, StatCounter &c) {
        bc.emplace_back(n, c.value());
    });
    EXPECT_EQ(ac, bc);
    EXPECT_EQ(a.engineStats, b.engineStats);
}

TEST(TraceReplay, RunPhaseReplayReproducesLiveBitForBit)
{
    std::string dir = scratchDir("runphase");
    sim::SimConfig cfg = tinyConfig();

    sim::TraceIoOptions record;
    record.recordDir = dir;
    sim::PhaseResult live = sim::runPhase(cfg, "mcf", 1, record);
    EXPECT_FALSE(live.replayed);
    ASSERT_TRUE(fs::exists(wl::tracePath(dir, "mcf", 1)));

    sim::TraceIoOptions replay;
    replay.replayDir = dir;
    sim::PhaseResult rep = sim::runPhase(cfg, "mcf", 1, replay);
    EXPECT_TRUE(rep.replayed);
    expectSamePhase(live, rep);

    // A different mechanism arm replays the same trace (record once,
    // replay many) and still matches its own live run.
    sim::SimConfig vp = tinyConfig();
    vp.mech = sim::SimConfig::vpOnly().mech;
    sim::PhaseResult vp_live = sim::runPhase(vp, "mcf", 1);
    sim::PhaseResult vp_rep = sim::runPhase(vp, "mcf", 1, replay);
    expectSamePhase(vp_live, vp_rep);

    fs::remove_all(dir);
}

TEST(TraceReplay, RunMatrixRecordThenReplayIsIdentical)
{
    std::string dir = scratchDir("matrix");
    std::vector<sim::SimConfig> configs = {tinyConfig()};
    std::vector<std::string> benches = {"hmmer", "libquantum"};

    sim::MatrixOptions rec_opts;
    rec_opts.jobs = 2;
    rec_opts.progress = false;
    rec_opts.traceIo.recordDir = dir;
    auto live = sim::runMatrix(configs, benches, rec_opts);

    sim::MatrixOptions rep_opts;
    rep_opts.jobs = 2;
    rep_opts.progress = false;
    rep_opts.traceIo.replayDir = dir;
    auto rep = sim::runMatrix(configs, benches, rep_opts);

    ASSERT_EQ(live.size(), rep.size());
    for (size_t b = 0; b < live.size(); ++b) {
        ASSERT_EQ(live[b].byConfig[0].phases.size(),
                  rep[b].byConfig[0].phases.size());
        for (size_t p = 0; p < live[b].byConfig[0].phases.size(); ++p) {
            EXPECT_TRUE(rep[b].byConfig[0].phases[p].replayed);
            expectSamePhase(live[b].byConfig[0].phases[p],
                            rep[b].byConfig[0].phases[p]);
        }
    }
    fs::remove_all(dir);
}

TEST(TraceReplay, MismatchedWorkloadHashIsRejected)
{
    std::string dir = scratchDir("mismatch");
    sim::SimConfig cfg = tinyConfig();
    sim::TraceIoOptions record;
    record.recordDir = dir;
    sim::runPhase(cfg, "lbm", 0, record);

    // Tamper: rewrite the file under a different workload's name so
    // the identity echo cannot match.
    std::string path = wl::tracePath(dir, "lbm", 0);
    wl::TraceParse t = wl::readTraceFile(path);
    ASSERT_TRUE(t.ok());
    t.header.workload = "mcf";
    std::string err;
    ASSERT_TRUE(wl::writeTraceFile(wl::tracePath(dir, "mcf", 0), t.header,
                                   t.records, &err))
        << err;
    sim::TraceIoOptions replay;
    replay.replayDir = dir;
    EXPECT_DEATH(sim::runPhase(cfg, "mcf", 0, replay), "identity");
    fs::remove_all(dir);
}

TEST(TraceReplay, MissingTraceIsFatalWithoutRecordFallback)
{
    std::string dir = scratchDir("missing");
    sim::SimConfig cfg = tinyConfig();
    sim::TraceIoOptions replay;
    replay.replayDir = dir;
    EXPECT_DEATH(sim::runPhase(cfg, "mcf", 0, replay), "no trace");

    // With a record dir the cell falls back to live emulation and
    // records, making replay+record an idempotent fill mode.
    sim::TraceIoOptions fill;
    fill.replayDir = dir;
    fill.recordDir = dir;
    sim::PhaseResult first = sim::runPhase(cfg, "mcf", 0, fill);
    EXPECT_FALSE(first.replayed);
    sim::PhaseResult second = sim::runPhase(cfg, "mcf", 0, fill);
    EXPECT_TRUE(second.replayed);
    expectSamePhase(first, second);
    fs::remove_all(dir);
}

} // namespace
} // namespace rsep

/**
 * @file
 * Workload-registry tests: the 29 suite benchmarks as registry data
 * (byte-identical to the old factory ladder), the stable workload
 * hash/key identity, runtime registration and overrides, the
 * `[workload]` scenario-file grammar, and — pinned with golden values —
 * the suite benchmarks' shard assignments and result-cache keys, which
 * this refactor must not move.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/result_cache.hh"
#include "sim/scenario.hh"
#include "sim/shard.hh"
#include "wl/emulator.hh"
#include "wl/suite.hh"
#include "wl/workload_spec.hh"

namespace rsep::wl
{
namespace
{

/** Run @p w for @p n committed-path records. */
std::vector<DynRecord>
streamOf(const Workload &w, u32 phase, size_t n)
{
    Emulator em(w.program);
    em.resetArchState();
    w.init(em, phase);
    std::vector<DynRecord> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(em.step());
    return out;
}

void
expectSameStream(const Workload &a, const Workload &b, size_t n = 512)
{
    ASSERT_EQ(a.program.size(), b.program.size());
    auto sa = streamOf(a, 1, n);
    auto sb = streamOf(b, 1, n);
    for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(sa[i].staticIdx, sb[i].staticIdx) << i;
        EXPECT_EQ(sa[i].result, sb[i].result) << i;
        EXPECT_EQ(sa[i].effAddr, sb[i].effAddr) << i;
        EXPECT_EQ(sa[i].taken, sb[i].taken) << i;
    }
}

TEST(WorkloadRegistry, SuiteSpecsMatchSuiteNames)
{
    ASSERT_EQ(suiteSpecs().size(), 29u);
    ASSERT_EQ(suiteNames().size(), 29u);
    for (size_t i = 0; i < suiteSpecs().size(); ++i)
        EXPECT_EQ(suiteSpecs()[i].name, suiteNames()[i]);
}

TEST(WorkloadRegistry, SuiteKeysAreBareNames)
{
    // The run-cell key of every suite benchmark is its bare name: the
    // identity the PR 3 shard partition and result cache key on.
    for (const WorkloadSpec &spec : suiteSpecs()) {
        EXPECT_EQ(workloadKey(spec), spec.name);
        auto key = resolveWorkloadKey(spec.name);
        ASSERT_TRUE(key.has_value()) << spec.name;
        EXPECT_EQ(*key, spec.name);
    }
}

TEST(WorkloadRegistry, WorkloadHashesAreStable)
{
    // Golden pins: a changed hash silently retires every recorded
    // trace and reshuffles custom-workload cache/shard identities.
    auto hashOf = [](const std::string &name) {
        auto spec = findWorkloadSpec(name);
        return spec ? workloadHash(*spec) : std::string("<unknown>");
    };
    EXPECT_EQ(hashOf("perlbench"), "722bba3d894130fe");
    EXPECT_EQ(hashOf("bzip2"), "30991f3bff0cd984");
    EXPECT_EQ(hashOf("mcf"), "df2a039a07de8e54");
}

TEST(WorkloadRegistry, SuiteShardAssignmentsArePinned)
{
    // Golden shard assignments of suite run cells under a fixed config
    // hash (pure FNV over strings — must never move; grown sweeps and
    // this refactor rely on stable assignment).
    const std::string cfg = "2ca460ee67616cb1";
    EXPECT_EQ(sim::shardOf("mcf", cfg, 4), 3u);
    EXPECT_EQ(sim::shardOf("hmmer", cfg, 4), 0u);
    EXPECT_EQ(sim::shardOf("perlbench", cfg, 4), 0u);
    EXPECT_EQ(sim::shardOf("xalancbmk", cfg, 4), 2u);
    EXPECT_EQ(sim::shardOf("mcf", cfg, 7), 2u);
    EXPECT_EQ(sim::shardOf("hmmer", cfg, 7), 3u);
    EXPECT_EQ(sim::shardOf("libquantum", cfg, 7), 3u);
    EXPECT_EQ(sim::shardOf("dealII", cfg, 7), 5u);
}

TEST(WorkloadRegistry, SuiteCacheKeysArePinned)
{
    // The on-disk cache record location of a suite cell is unchanged
    // by the workload refactor (bare benchmark name in the path).
    sim::ResultCache cache("/tmp/unused-root");
    sim::CacheKey key{"mcf", "2ca460ee67616cb1", 3, 0x5eed};
    EXPECT_EQ(cache.cellPath(key),
              "/tmp/unused-root/mcf/2ca460ee67616cb1-p3-s"
              "0000000000005eed.cell");
}

TEST(WorkloadRegistry, BuildMatchesDirectFactories)
{
    // Registry-built suite workloads are the same programs + init as
    // the old suite.cc factory ladder produced.
    expectSameStream(makeWorkload("mcf"),
                     makePointerChase("mcf", {.nodes = 1 << 16}));
    expectSameStream(makeWorkload("hmmer"),
                     makeDynProg("hmmer", {.clampDuty = 45}));
    expectSameStream(makeWorkload("wrf"),
                     makeSparseSolver("wrf", {.rows = 1 << 11,
                                              .nnzPerRow = 16,
                                              .vpFriendly = true}));
}

TEST(WorkloadRegistry, ArchetypeTableIsComplete)
{
    EXPECT_EQ(archetypeNames().size(),
              std::variant_size_v<WorkloadParams>);
    std::set<std::string> seen;
    for (const std::string &a : archetypeNames())
        EXPECT_TRUE(seen.insert(a).second) << "duplicate " << a;
    WorkloadSpec spec;
    spec.name = "x";
    for (const std::string &a : archetypeNames()) {
        EXPECT_TRUE(setArchetype(spec, a));
        EXPECT_EQ(archetypeName(spec.params), a);
    }
    EXPECT_FALSE(setArchetype(spec, "no-such-archetype"));
}

TEST(WorkloadRegistry, ApplyAndSerializeRoundTrip)
{
    WorkloadSpec spec;
    spec.name = "custom-chase";
    ASSERT_TRUE(setArchetype(spec, "pointer_chase"));
    std::string err;
    EXPECT_TRUE(applyWorkloadKey(spec, "nodes", "4096", &err)) << err;
    EXPECT_TRUE(applyWorkloadKey(spec, "cost_alphabet", "17", &err)) << err;
    EXPECT_FALSE(applyWorkloadKey(spec, "grid_cells", "1", &err));
    EXPECT_NE(err.find("unknown key"), std::string::npos);
    EXPECT_FALSE(applyWorkloadKey(spec, "nodes", "banana", &err));
    EXPECT_NE(err.find("bad value"), std::string::npos);

    // Serialize -> parse -> identical spec (name, archetype, params).
    std::string text = serializeWorkload(spec);
    sim::ScenarioParse parsed = sim::parseScenarioText(text, "<rt>");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    ASSERT_EQ(parsed.workloads.size(), 1u);
    EXPECT_EQ(parsed.workloads[0].name, spec.name);
    EXPECT_EQ(workloadHash(parsed.workloads[0]), workloadHash(spec));
    EXPECT_EQ(serializeWorkload(parsed.workloads[0]), text);
}

TEST(WorkloadRegistry, HashCoversParamsButNotName)
{
    WorkloadSpec a{"one", StencilParams{.gridCells = 512, .zeroPct = 10}};
    WorkloadSpec b{"two", StencilParams{.gridCells = 512, .zeroPct = 10}};
    WorkloadSpec c{"one", StencilParams{.gridCells = 512, .zeroPct = 11}};
    EXPECT_EQ(workloadHash(a), workloadHash(b));
    EXPECT_NE(workloadHash(a), workloadHash(c));
}

TEST(WorkloadRegistry, RegisterAndOverride)
{
    // A new custom workload keys as name@hash and resolves by name.
    WorkloadSpec custom{"wl-test-custom",
                        GateSimParams{.stateWords = 1024}};
    std::string key = registerWorkload(custom);
    EXPECT_EQ(key, custom.name + "@" + workloadHash(custom));
    EXPECT_EQ(resolveWorkloadKey("wl-test-custom").value_or(""), key);
    EXPECT_EQ(resolveWorkloadKey(key).value_or(""), key);
    ASSERT_TRUE(findWorkloadSpec(key).has_value());
    EXPECT_EQ(findWorkloadSpec(key)->name, "wl-test-custom");

    // Re-registering a pristine suite spec is a no-op on identity.
    for (const WorkloadSpec &s : suiteSpecs())
        if (s.name == "lbm")
            EXPECT_EQ(registerWorkload(s), "lbm");
    EXPECT_EQ(resolveWorkloadKey("lbm").value_or(""), "lbm");

    // Overriding a suite name shifts name lookups to a hash-qualified
    // key; the pristine suite benchmark stays reachable by... nothing
    // ambiguous: the override owns the name, by design.
    WorkloadSpec bigger{"lbm", StreamingParams{.arrayLen = 1 << 18}};
    std::string okey = registerWorkload(bigger);
    EXPECT_EQ(okey, "lbm@" + workloadHash(bigger));
    EXPECT_EQ(resolveWorkloadKey("lbm").value_or(""), okey);
    EXPECT_EQ(std::get<StreamingParams>(findWorkloadSpec("lbm")->params)
                  .arrayLen,
              u64{1} << 18);

    // Re-registering the pristine spec restores the bare-name mapping.
    for (const WorkloadSpec &s : suiteSpecs())
        if (s.name == "lbm")
            registerWorkload(s);
    EXPECT_EQ(resolveWorkloadKey("lbm").value_or(""), "lbm");

    // makeWorkload accepts qualified keys.
    Workload w = makeWorkload(okey);
    EXPECT_EQ(w.name, "lbm");
    EXPECT_EQ(w.archetype, "streaming");
}

TEST(WorkloadScenarioFiles, WorkloadBlockGrammar)
{
    const char *text = R"(
# workload-only files are valid
[workload]
name = chase-big
base = mcf
nodes = 32768

[workload]
name = tiny-stencil
archetype = stencil
grid_cells = 4096
zero_pct = 75
)";
    sim::ScenarioParse p = sim::parseScenarioText(text, "<wl>");
    ASSERT_TRUE(p.ok()) << p.error;
    EXPECT_TRUE(p.scenarios.empty());
    ASSERT_EQ(p.workloads.size(), 2u);
    EXPECT_EQ(p.workloads[0].name, "chase-big");
    EXPECT_EQ(archetypeName(p.workloads[0].params), "pointer_chase");
    EXPECT_EQ(std::get<PointerChaseParams>(p.workloads[0].params).nodes,
              32768u);
    // base = mcf carried the non-overridden fields.
    EXPECT_EQ(std::get<PointerChaseParams>(p.workloads[0].params)
                  .costAlphabet,
              61u);
    EXPECT_EQ(std::get<StencilParams>(p.workloads[1].params).zeroPct,
              75u);
}

TEST(WorkloadScenarioFiles, MixedScenarioAndWorkload)
{
    const char *text = R"(
[workload]
name = wl-mixed
archetype = streaming
array_len = 2048

[scenario]
name = arm-mixed
base = baseline
[sim]
checkpoints = 1
)";
    sim::ScenarioParse p = sim::parseScenarioText(text, "<mix>");
    ASSERT_TRUE(p.ok()) << p.error;
    ASSERT_EQ(p.scenarios.size(), 1u);
    ASSERT_EQ(p.workloads.size(), 1u);
    EXPECT_EQ(p.scenarios[0].name, "arm-mixed");
    EXPECT_EQ(p.scenarios[0].config.checkpoints, 1u);
    EXPECT_EQ(p.workloads[0].name, "wl-mixed");
}

TEST(WorkloadScenarioFiles, BaseMayReferenceEarlierDefinition)
{
    const char *text = R"(
[workload]
name = wl-first
archetype = dyn_prog
cols = 128

[workload]
name = wl-second
base = wl-first
clamp_duty = 99
)";
    sim::ScenarioParse p = sim::parseScenarioText(text, "<chain>");
    ASSERT_TRUE(p.ok()) << p.error;
    ASSERT_EQ(p.workloads.size(), 2u);
    const auto &second = std::get<DynProgParams>(p.workloads[1].params);
    EXPECT_EQ(second.cols, 128u);
    EXPECT_EQ(second.clampDuty, 99u);
}

TEST(WorkloadScenarioFiles, GrammarDiagnostics)
{
    auto errOf = [](const char *text) {
        return sim::parseScenarioText(text, "<bad>").error;
    };
    EXPECT_NE(errOf("[workload]\narchetype = stencil\n")
                  .find("missing a 'name'"),
              std::string::npos);
    EXPECT_NE(errOf("[workload]\nname = x\n")
                  .find("'archetype' or 'base'"),
              std::string::npos);
    EXPECT_NE(errOf("[workload]\nname = x\narchetype = bogus\n")
                  .find("unknown archetype"),
              std::string::npos);
    EXPECT_NE(errOf("[workload]\nname = x\nnodes = 5\n")
                  .find("before the workload's"),
              std::string::npos);
    EXPECT_NE(errOf("[workload]\nname = x\nbase = not-a-workload\n")
                  .find("unknown base workload"),
              std::string::npos);
    EXPECT_NE(errOf("[workload]\nname = x\narchetype = stencil\n"
                    "nodes = 5\n")
                  .find("unknown key"),
              std::string::npos);
    EXPECT_NE(errOf("[workload]\nname = x\n[sim]\n")
                  .find("not valid inside a [workload]"),
              std::string::npos);
    EXPECT_NE(errOf("").find("no [scenario] or [workload]"),
              std::string::npos);
}

} // namespace
} // namespace rsep::wl

/** @file Property tests over the 29-benchmark workload suite. */

#include <gtest/gtest.h>

#include <map>

#include "wl/suite.hh"

namespace rsep::wl
{
namespace
{

/** Run @p n instructions and collect simple mix statistics. */
struct MixStats
{
    u64 producers = 0;
    u64 loads = 0;
    u64 stores = 0;
    u64 branches = 0;
    u64 zeros = 0;
    u64 total = 0;
};

MixStats
runMix(const std::string &name, u32 phase, u64 n)
{
    Workload w = makeWorkload(name);
    Emulator em(w.program);
    em.resetArchState();
    w.init(em, phase);
    MixStats m;
    for (u64 i = 0; i < n; ++i) {
        const DynRecord &r = em.step();
        const isa::StaticInst &si = w.program.at(r.staticIdx);
        ++m.total;
        if (si.writesReg()) {
            ++m.producers;
            if (r.result == 0 && !si.isZeroIdiom())
                ++m.zeros;
        }
        if (si.isLoad())
            ++m.loads;
        if (si.isStore())
            ++m.stores;
        if (si.isBranch())
            ++m.branches;
    }
    return m;
}

class SuiteWorkloads : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteWorkloads, BuildsAndRunsWithSaneMix)
{
    MixStats m = runMix(GetParam(), 0, 30000);
    EXPECT_EQ(m.total, 30000u);
    // Every kernel produces registers, executes loads and branches.
    EXPECT_GT(m.producers, m.total / 4) << "too few producers";
    EXPECT_GT(m.loads, 0u);
    EXPECT_GT(m.branches, 0u);
    EXPECT_LT(m.loads, m.total * 6 / 10) << "implausible load fraction";
    EXPECT_LT(m.branches, m.total / 2) << "implausible branch fraction";
}

TEST_P(SuiteWorkloads, DeterministicWithinPhase)
{
    const std::string name = GetParam();
    Workload w1 = makeWorkload(name);
    Workload w2 = makeWorkload(name);
    Emulator a(w1.program), b(w2.program);
    a.resetArchState();
    b.resetArchState();
    w1.init(a, 2);
    w2.init(b, 2);
    for (int i = 0; i < 5000; ++i) {
        const DynRecord &ra = a.step();
        const DynRecord &rb = b.step();
        ASSERT_EQ(ra.staticIdx, rb.staticIdx);
        ASSERT_EQ(ra.result, rb.result);
        ASSERT_EQ(ra.effAddr, rb.effAddr);
    }
}

TEST_P(SuiteWorkloads, PhasesDiffer)
{
    const std::string name = GetParam();
    Workload w1 = makeWorkload(name);
    Workload w2 = makeWorkload(name);
    Emulator a(w1.program), b(w2.program);
    a.resetArchState();
    b.resetArchState();
    w1.init(a, 0);
    w2.init(b, 1);
    bool differ = false;
    for (int i = 0; i < 5000 && !differ; ++i) {
        const DynRecord &ra = a.step();
        const DynRecord &rb = b.step();
        differ = ra.result != rb.result || ra.effAddr != rb.effAddr ||
                 ra.staticIdx != rb.staticIdx;
    }
    EXPECT_TRUE(differ) << "checkpoint phases should not be identical";
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SuiteWorkloads,
                         ::testing::ValuesIn(suiteNames()));

TEST(Suite, Has29PaperBenchmarks)
{
    EXPECT_EQ(suiteNames().size(), 29u);
    EXPECT_EQ(makeSuite().size(), 29u);
    // The paper collects 10 checkpoints per benchmark (Section V).
    EXPECT_EQ(checkpointsPerBenchmark, 10u);
}

TEST(Suite, UnknownNameDies)
{
    EXPECT_DEATH(
        {
            Workload w = makeWorkload("not-a-benchmark");
            (void)w;
        },
        "unknown workload");
}

TEST(Suite, ZeroHeavyBenchmarksProduceManyZeros)
{
    // Fig. 1 shape: zeusmp/cactusADM produce far more zero results
    // than dense FP codes like namd.
    MixStats zeus = runMix("zeusmp", 0, 40000);
    MixStats namd = runMix("namd", 0, 40000);
    double zeus_ratio = double(zeus.zeros) / zeus.total;
    double namd_ratio = double(namd.zeros) / namd.total;
    EXPECT_GT(zeus_ratio, 0.10);
    EXPECT_LT(namd_ratio, 0.05);
    EXPECT_GT(zeus_ratio, 3 * namd_ratio);
}

TEST(Suite, GamessHasStructurallyZeroResults)
{
    // The regular_zero archetype produces always-zero static
    // instructions (zero-prediction targets).
    Workload w = makeWorkload("gamess");
    Emulator em(w.program);
    em.resetArchState();
    w.init(em, 0);
    std::map<u32, std::pair<u64, u64>> zero_count; // idx -> (zeros, all)
    for (int i = 0; i < 40000; ++i) {
        const DynRecord &r = em.step();
        if (w.program.at(r.staticIdx).writesReg()) {
            auto &[z, n] = zero_count[r.staticIdx];
            z += r.result == 0;
            ++n;
        }
    }
    bool has_always_zero = false;
    for (auto &[idx, zn] : zero_count)
        if (zn.second > 500 && zn.first == zn.second)
            has_always_zero = true;
    EXPECT_TRUE(has_always_zero);
}

TEST(Suite, McfNodeAndSideArrayAgree)
{
    // The pointer_chase side array must mirror node potentials in
    // visit order (the cross-chain equality the kernel is built on).
    Workload w = makeWorkload("mcf");
    Emulator em(w.program);
    em.resetArchState();
    w.init(em, 0);
    u64 mismatches = 0, pairs = 0;
    u64 side_val = 0;
    for (int i = 0; i < 60000; ++i) {
        const DynRecord &r = em.step();
        const isa::StaticInst &si = w.program.at(r.staticIdx);
        if (!si.isLoad())
            continue;
        // A-loads read the side array (base x11, region 0x2...),
        // B-loads read node->potential (offset 64).
        if (si.op == isa::Opcode::LdrX)
            side_val = r.result;
        else if (si.op == isa::Opcode::Ldr && si.imm == 64) {
            ++pairs;
            mismatches += r.result != side_val;
        }
    }
    ASSERT_GT(pairs, 1000u);
    EXPECT_EQ(mismatches, 0u);
}

} // namespace
} // namespace rsep::wl

/** @file Memory hierarchy tests: caches, MSHRs, prefetchers, TLB, DRAM. */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"
#include "pred/storesets.hh"

namespace rsep
{
namespace
{

using namespace rsep::mem;

TEST(Cache, HitAfterMiss)
{
    CacheLevel c({.name = "t", .sizeBytes = 4096, .assoc = 4,
                  .latency = 4, .mshrs = 8});
    EXPECT_FALSE(c.accessTags(0x1000, false));
    EXPECT_TRUE(c.accessTags(0x1000, false));
    EXPECT_TRUE(c.accessTags(0x1038, false)); // same 64B line.
    EXPECT_FALSE(c.accessTags(0x1040, false)); // next line.
    EXPECT_EQ(c.hits.value(), 2u);
    EXPECT_EQ(c.misses.value(), 2u);
}

TEST(Cache, LruEvictsOldest)
{
    // 4 sets x 2 ways, 64B lines: lines mapping to set 0 are 256B apart.
    CacheLevel c({.name = "t", .sizeBytes = 512, .assoc = 2,
                  .latency = 1, .mshrs = 4});
    c.accessTags(0x0, false);
    c.accessTags(0x100, false);
    c.accessTags(0x0, false);   // refresh line 0.
    c.accessTags(0x200, false); // evicts 0x100.
    EXPECT_TRUE(c.peek(0x0));
    EXPECT_FALSE(c.peek(0x100));
    EXPECT_TRUE(c.peek(0x200));
}

TEST(Cache, MshrMergeSameLine)
{
    CacheLevel c({.name = "t", .sizeBytes = 4096, .assoc = 4,
                  .latency = 4, .mshrs = 8});
    Cycle r1 = c.trackMiss(0x2000, 10, 100);
    EXPECT_EQ(r1, 100u);
    auto pend = c.pendingFill(0x2008, 20); // same line.
    ASSERT_TRUE(pend.has_value());
    EXPECT_EQ(*pend, 100u);
    EXPECT_EQ(c.mshrMerges.value(), 1u);
    // After completion the fill expires.
    EXPECT_FALSE(c.pendingFill(0x2008, 101).has_value());
}

TEST(Cache, MshrCapacityDelays)
{
    CacheLevel c({.name = "t", .sizeBytes = 4096, .assoc = 4,
                  .latency = 4, .mshrs = 2});
    c.trackMiss(0x0, 0, 50);
    c.trackMiss(0x40, 0, 60);
    // Third miss must wait for the earliest MSHR to free (cycle 50).
    Cycle r = c.trackMiss(0x80, 0, 70);
    EXPECT_GE(r, 70u + 50u);
    EXPECT_EQ(c.mshrStalls.value(), 1u);
}

TEST(StridePrefetcherTest, DetectsStrideAfterConfidence)
{
    StridePrefetcher pf(16);
    Addr pc = 0x400100;
    EXPECT_EQ(pf.observe(pc, 0x1000), 0u);
    EXPECT_EQ(pf.observe(pc, 0x1040), 0u); // stride learned.
    EXPECT_EQ(pf.observe(pc, 0x1080), 0u); // confidence building.
    Addr p3 = pf.observe(pc, 0x10c0);
    EXPECT_EQ(p3, 0x1100u); // confident: prefetch next.
}

TEST(StridePrefetcherTest, ResetOnStrideChange)
{
    StridePrefetcher pf(16);
    Addr pc = 0x400100;
    pf.observe(pc, 0x1000);
    pf.observe(pc, 0x1040);
    pf.observe(pc, 0x1080);
    EXPECT_NE(pf.observe(pc, 0x10c0), 0u);
    EXPECT_EQ(pf.observe(pc, 0x5000), 0u); // broken stride.
}

TEST(StreamPrefetcherTest, DetectsSequentialLines)
{
    StreamPrefetcher pf(4);
    EXPECT_EQ(pf.observe(0x10000), 0u);
    Addr p = pf.observe(0x10040); // next line: stream detected.
    EXPECT_EQ(p, 0x10080u);
}

TEST(Tlb, HitMissAndWalkLatency)
{
    Tlb tlb(4, 30);
    EXPECT_EQ(tlb.access(0x1000), 30u);
    EXPECT_EQ(tlb.access(0x1800), 0u); // same page.
    EXPECT_EQ(tlb.access(0x2000), 30u);
    EXPECT_EQ(tlb.misses.value(), 2u);
    EXPECT_EQ(tlb.hits.value(), 1u);
}

TEST(Tlb, LruReplacement)
{
    Tlb tlb(2, 30);
    tlb.access(0x1000);
    tlb.access(0x2000);
    tlb.access(0x1000); // refresh.
    tlb.access(0x3000); // evicts 0x2000.
    EXPECT_EQ(tlb.access(0x1000), 0u);
    EXPECT_EQ(tlb.access(0x2000), 30u);
}

TEST(DramTest, RowHitFasterThanRowMiss)
{
    Dram d;
    Cycle first = d.access(0x100000, 0);
    Cycle second = d.access(0x100040 + 2 * 64, first);
    (void)second;
    // Statistical check through counters on a same-row pair: access the
    // same address region twice through the same bank.
    Dram d2;
    Cycle a = d2.access(0x0, 0);
    Cycle b = d2.access(0x0, a + 1); // same row, bank reopened.
    EXPECT_LT(b - (a + 1), a - 0); // row hit latency < first access.
    EXPECT_GE(d2.rowHits.value(), 1u);
}

TEST(DramTest, MinLatencyInPaperBallpark)
{
    Dram d;
    // Min read ~36ns -> ~95-130 core cycles at 3.4GHz per Table I.
    EXPECT_GT(d.minLatency(), 60u);
    EXPECT_LT(d.minLatency(), 160u);
}

TEST(DramTest, BankParallelismBeatsSerialAccess)
{
    Dram d;
    // Two accesses to different banks issued together should overlap:
    // completion of the second is far less than 2x a full access.
    Cycle a = d.access(0x0, 0);
    Cycle b = d.access(0x40, 0); // next line -> other channel/bank.
    EXPECT_LT(b, a + a / 2);
}

TEST(Hierarchy, LatenciesMatchTableI)
{
    MemoryHierarchy mh;
    Addr addr = 0x100000;
    Cycle t0 = 1000;
    // Cold: full path to DRAM.
    Cycle cold = mh.load(0x400000, addr, t0);
    EXPECT_GT(cold - t0, 100u);
    // Warm L1: 4-cycle load-to-use (after the fill completes).
    Cycle warm = mh.load(0x400000, addr, cold + 10);
    EXPECT_EQ(warm - (cold + 10), 4u);
}

TEST(Hierarchy, L2AndL3HitLatencies)
{
    MemoryHierarchy mh;
    // Fill a line, then evict it from L1 by touching many lines
    // mapping to the same set; it should then hit in L2 at 12 cycles.
    Addr target = 0x500000;
    Cycle t = mh.load(0x400000, target, 0) + 100;
    // L1D: 32KB 8-way, 64 sets -> same-set lines are 4KB apart.
    for (int i = 1; i <= 9; ++i)
        t = std::max(t, mh.load(0x400000, target + i * 4096, t)) + 200;
    Cycle hit = mh.load(0x400000, target, t + 500);
    EXPECT_EQ(hit - (t + 500), 12u); // L2 latency (Table I).
}

TEST(Hierarchy, IfetchUsesItlbAndL1i)
{
    MemoryHierarchy mh;
    Addr pc = 0x400000;
    Cycle cold = mh.ifetch(pc, 100);
    EXPECT_GT(cold, 101u); // TLB walk + miss path.
    Cycle warm = mh.ifetch(pc, cold + 5);
    EXPECT_EQ(warm - (cold + 5), 1u); // 1-cycle L1I.
}

TEST(Hierarchy, StoreCommitAllocates)
{
    MemoryHierarchy mh;
    Addr addr = 0x700000;
    mh.storeCommit(addr, 100);
    // A shortly-following load to the line merges with the write fill.
    Cycle done = mh.load(0x400000, addr, 110);
    EXPECT_LT(done - 110, 300u);
}

TEST(StoreSetsTest, ViolationCreatesDependence)
{
    pred::StoreSets ss;
    Addr load_pc = 0x400100, store_pc = 0x400200;
    EXPECT_EQ(ss.loadRename(load_pc), 0u);
    ss.reportViolation(load_pc, store_pc);
    SeqNum dep = ss.storeRename(store_pc, 77);
    EXPECT_EQ(dep, 0u); // first store in the set.
    EXPECT_EQ(ss.loadRename(load_pc), 77u);
}

TEST(StoreSetsTest, StoreRetireClearsOwner)
{
    pred::StoreSets ss;
    Addr load_pc = 0x400100, store_pc = 0x400200;
    ss.reportViolation(load_pc, store_pc);
    ss.storeRename(store_pc, 10);
    ss.storeRetire(store_pc, 10);
    EXPECT_EQ(ss.loadRename(load_pc), 0u);
}

TEST(StoreSetsTest, StoreStoreOrderingWithinSet)
{
    pred::StoreSets ss;
    Addr load_pc = 0x400100, s1 = 0x400200, s2 = 0x400300;
    ss.reportViolation(load_pc, s1);
    ss.reportViolation(load_pc, s2); // merge into one set.
    ss.storeRename(s1, 5);
    SeqNum dep = ss.storeRename(s2, 9);
    EXPECT_EQ(dep, 5u); // second store ordered behind the first.
}

TEST(StoreSetsTest, MergeKeepsSmallerSsid)
{
    pred::StoreSets ss;
    ss.reportViolation(0x100, 0x200);
    ss.reportViolation(0x300, 0x400);
    // Merge the two sets via a cross violation.
    ss.reportViolation(0x100, 0x400);
    ss.storeRename(0x400, 21);
    EXPECT_EQ(ss.loadRename(0x100), 21u);
    EXPECT_EQ(ss.violations.value(), 3u);
}

} // namespace
} // namespace rsep

/**
 * @file
 * rsep_trace — inspect, dump and validate `.rtr` recorded traces.
 *
 * Traces are the committed-path streams the drivers write with
 * `--record-trace` and replay with `--replay-trace` (wl/trace_io.hh).
 *
 *     rsep_trace info traces/*.rtr
 *     rsep_trace dump --limit 40 traces/mcf-p0.rtr
 *     rsep_trace validate --deep traces/*.rtr
 *
 * `validate` always checks the envelope (version, header, payload
 * size, checksum) plus — when the trace's workload resolves in the
 * registry — the workload-hash and program-length echoes and every
 * record's static-index bounds. `--deep` additionally re-runs the
 * functional emulator for the cell and requires the recorded stream to
 * match it bit for bit.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/mmap_file.hh"
#include "sim/scenario.hh"
#include "wl/emulator.hh"
#include "wl/trace_io.hh"
#include "wl/workload_spec.hh"

namespace
{

using namespace rsep;

void
printHelp()
{
    std::printf(
        "usage: rsep_trace COMMAND [options] FILE [FILE ...]\n"
        "Inspect and validate .rtr recorded traces (--record-trace /\n"
        "--replay-trace on the bench drivers).\n"
        "\ncommands:\n"
        "  info             print each trace's header summary\n"
        "  dump             print decoded records (with disassembly when\n"
        "                   the workload resolves in the registry)\n"
        "  validate         check version, header, checksum and record\n"
        "                   bounds; non-zero exit on any failure\n"
        "\noptions:\n"
        "  --limit N        dump: stop after N records (default 32,\n"
        "                   0 = all)\n"
        "  --bench-decode N info: time N full decode passes over each\n"
        "                   trace (straight off the mmap'd bytes) and\n"
        "                   report per-pass wall time and throughput —\n"
        "                   the microbench behind the decoded-trace\n"
        "                   cache's savings\n"
        "  --deep           validate: re-run the functional emulator and\n"
        "                   require a bit-exact record match\n"
        "  --workload-file PATH\n"
        "                   register a file's [workload] definitions so\n"
        "                   traces of custom workloads resolve\n"
        "                   (repeatable)\n"
        "  --help, -h       show this help\n");
}

int
usageError(const std::string &msg)
{
    std::fprintf(stderr, "rsep_trace: %s (try --help)\n", msg.c_str());
    return 2;
}

/** Registry spec for a trace, when its workload is still known. */
std::optional<wl::WorkloadSpec>
specFor(const wl::TraceHeader &header)
{
    return wl::findWorkloadSpec(header.workload);
}

int
cmdInfo(const std::vector<std::string> &files, u64 bench_decode)
{
    bool ok = true;
    for (const std::string &path : files) {
        wl::TraceParse t = wl::readTraceFile(path, /*header_only=*/true);
        if (!t.ok()) {
            std::fprintf(stderr, "rsep_trace: %s\n", t.error.c_str());
            ok = false;
            continue;
        }
        // Decoded SoA footprint: what one DecodedTraceCache entry for
        // this trace costs (see DecodedTrace::decodedBytes).
        const u64 decoded_bytes =
            t.header.records * wl::DecodedTrace::bytesPerRecord;
        std::printf("%s:\n", path.c_str());
        std::printf("  version        %u%s\n", t.header.version,
                    t.header.version == wl::traceFormatVersion
                        ? ""
                        : "  (older encoding; still replayable)");
        std::printf("  workload       %s\n", t.header.workload.c_str());
        std::printf("  workload_hash  %s%s\n",
                    t.header.workloadHash.c_str(),
                    specFor(t.header) ? "" : "  (not in this registry)");
        std::printf("  phase          %u\n", t.header.phase);
        std::printf("  records        %llu\n",
                    static_cast<unsigned long long>(t.header.records));
        std::printf("  decoded_bytes  %llu\n",
                    static_cast<unsigned long long>(decoded_bytes));
        std::printf("  program_length %llu\n",
                    static_cast<unsigned long long>(
                        t.header.programLength));
        if (bench_decode == 0)
            continue;
        MmapFile file;
        std::string err;
        if (!file.open(path, &err)) {
            std::fprintf(stderr, "rsep_trace: %s\n", err.c_str());
            ok = false;
            continue;
        }
        u64 best = ~0ull, total = 0;
        for (u64 pass = 0; pass < bench_decode; ++pass) {
            auto t0 = std::chrono::steady_clock::now();
            wl::DecodedTraceParse d =
                wl::decodeTraceImage(file.view(), path);
            auto micros = static_cast<u64>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
            if (!d.ok()) {
                std::fprintf(stderr, "rsep_trace: %s\n", d.error.c_str());
                ok = false;
                break;
            }
            best = std::min(best, micros);
            total += micros;
        }
        if (best == ~0ull)
            continue;
        double best_s = static_cast<double>(best) / 1e6;
        std::printf("  decode x%llu    best %llu us, mean %.0f us "
                    "(%.0f Mrec/s, %.0f MB/s decoded)\n",
                    static_cast<unsigned long long>(bench_decode),
                    static_cast<unsigned long long>(best),
                    static_cast<double>(total) /
                        static_cast<double>(bench_decode),
                    best_s > 0.0 ? static_cast<double>(t.header.records) /
                                       best_s / 1e6
                                 : 0.0,
                    best_s > 0.0 ? static_cast<double>(decoded_bytes) /
                                       best_s / (1 << 20)
                                 : 0.0);
    }
    return ok ? 0 : 1;
}

int
cmdDump(const std::vector<std::string> &files, u64 limit)
{
    bool ok = true;
    for (const std::string &path : files) {
        wl::TraceParse t = wl::readTraceFile(path);
        if (!t.ok()) {
            std::fprintf(stderr, "rsep_trace: %s\n", t.error.c_str());
            ok = false;
            continue;
        }
        std::optional<wl::WorkloadSpec> spec = specFor(t.header);
        std::optional<wl::Workload> w;
        if (spec)
            w = wl::buildWorkload(*spec);
        std::printf("%s: %s phase %u, %zu records\n", path.c_str(),
                    t.header.workload.c_str(), t.header.phase,
                    t.records.size());
        u64 shown = 0;
        for (const wl::DynRecord &r : t.records) {
            if (limit && shown >= limit) {
                std::printf("  ... (%zu more)\n",
                            t.records.size() - static_cast<size_t>(shown));
                break;
            }
            std::string disasm =
                w && r.staticIdx < w->program.size()
                    ? w->program.disasm(r.staticIdx)
                    : std::string("<unknown>");
            std::printf("  %8llu  si=%-5u next=%-5u result=%016llx "
                        "ea=%010llx %s  %s\n",
                        static_cast<unsigned long long>(shown),
                        r.staticIdx, r.nextIdx,
                        static_cast<unsigned long long>(r.result),
                        static_cast<unsigned long long>(r.effAddr),
                        r.taken ? "T" : "-", disasm.c_str());
            ++shown;
        }
    }
    return ok ? 0 : 1;
}

int
cmdValidate(const std::vector<std::string> &files, bool deep)
{
    bool ok = true;
    for (const std::string &path : files) {
        auto bad = [&](const std::string &msg) {
            std::fprintf(stderr, "rsep_trace: %s: %s\n", path.c_str(),
                         msg.c_str());
            ok = false;
        };
        wl::TraceParse t = wl::readTraceFile(path);
        if (!t.ok()) {
            std::fprintf(stderr, "rsep_trace: %s\n", t.error.c_str());
            ok = false;
            continue;
        }
        if (t.records.size() != t.header.records) {
            bad("record count mismatch");
            continue;
        }
        std::optional<wl::WorkloadSpec> spec = specFor(t.header);
        if (!spec) {
            std::printf("%s: OK (envelope only; workload '%s' is not in "
                        "this registry)\n",
                        path.c_str(), t.header.workload.c_str());
            continue;
        }
        if (wl::workloadHash(*spec) != t.header.workloadHash) {
            bad("workload_hash " + t.header.workloadHash +
                " does not match the registry's " +
                wl::workloadHash(*spec) +
                " (the kernel changed since recording; re-record)");
            continue;
        }
        wl::Workload w = wl::buildWorkload(*spec);
        if (w.program.size() != t.header.programLength) {
            bad("program_length mismatch");
            continue;
        }
        bool bounds_ok = true;
        for (size_t i = 0; i < t.records.size() && bounds_ok; ++i)
            if (t.records[i].staticIdx >= w.program.size() ||
                t.records[i].nextIdx >= w.program.size()) {
                bad("record " + std::to_string(i) +
                    " indexes outside the program");
                bounds_ok = false;
            }
        if (!bounds_ok)
            continue;
        if (deep) {
            wl::Emulator emu(w.program);
            emu.resetArchState();
            w.init(emu, t.header.phase);
            bool match = true;
            for (size_t i = 0; i < t.records.size() && match; ++i) {
                const wl::DynRecord &want = t.records[i];
                const wl::DynRecord &got = emu.step();
                if (got.staticIdx != want.staticIdx ||
                    got.nextIdx != want.nextIdx ||
                    got.result != want.result ||
                    got.effAddr != want.effAddr ||
                    got.taken != want.taken) {
                    bad("record " + std::to_string(i) +
                        " diverges from live emulation (re-record)");
                    match = false;
                }
            }
            if (!match)
                continue;
        }
        std::printf("%s: OK (%zu records%s)\n", path.c_str(),
                    t.records.size(),
                    deep ? ", deep-verified against live emulation" : "");
    }
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string command;
    std::vector<std::string> files;
    u64 limit = 32;
    u64 bench_decode = 0;
    bool deep = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            printHelp();
            return 0;
        }
        if (a == "--deep") {
            deep = true;
            continue;
        }
        if (a == "--workload-file" || a.rfind("--workload-file=", 0) == 0) {
            std::string path;
            if (a == "--workload-file") {
                if (i + 1 >= argc)
                    return usageError("--workload-file requires a path");
                path = argv[++i];
            } else {
                path = a.substr(16);
            }
            rsep::sim::ScenarioParse parsed =
                rsep::sim::parseScenarioFile(path);
            if (!parsed.ok()) {
                std::fprintf(stderr, "rsep_trace: %s\n",
                             parsed.error.c_str());
                return 1;
            }
            for (const wl::WorkloadSpec &w : parsed.workloads)
                wl::registerWorkload(w);
            continue;
        }
        if (a == "--limit" || a.rfind("--limit=", 0) == 0) {
            std::string value;
            if (a == "--limit") {
                if (i + 1 >= argc)
                    return usageError("--limit requires a value");
                value = argv[++i];
            } else {
                value = a.substr(8);
            }
            char *end = nullptr;
            limit = std::strtoull(value.c_str(), &end, 10);
            if (!end || *end != '\0' || value.empty())
                return usageError("invalid --limit '" + value + "'");
            continue;
        }
        if (a == "--bench-decode" || a.rfind("--bench-decode=", 0) == 0) {
            std::string value;
            if (a == "--bench-decode") {
                if (i + 1 >= argc)
                    return usageError("--bench-decode requires a value");
                value = argv[++i];
            } else {
                value = a.substr(15);
            }
            char *end = nullptr;
            bench_decode = std::strtoull(value.c_str(), &end, 10);
            if (!end || *end != '\0' || value.empty() || bench_decode == 0)
                return usageError("invalid --bench-decode '" + value +
                                  "' (expected a pass count >= 1)");
            continue;
        }
        if (!a.empty() && a[0] == '-')
            return usageError("unknown option '" + a + "'");
        if (command.empty())
            command = a;
        else
            files.push_back(a);
    }

    if (command.empty())
        return usageError("no command given (info, dump or validate)");
    if (files.empty())
        return usageError("no trace files given");

    if (command == "info")
        return cmdInfo(files, bench_decode);
    if (command == "dump")
        return cmdDump(files, limit);
    if (command == "validate")
        return cmdValidate(files, deep);
    return usageError("unknown command '" + command +
                      "' (expected info, dump or validate)");
}

/**
 * @file
 * rsep_samples — inspect, dump, merge and summarize `.rts` time-series
 * sample files (the per-cell phase-behaviour timelines the drivers
 * write with `--sample-every`; see sim/sample_io.hh).
 *
 *     rsep_samples info samples/*.rts
 *     rsep_samples dump --limit 40 samples/mcf-*.rts
 *     rsep_samples merge --csv all.csv shard0/*.rts shard1/*.rts
 *     rsep_samples summarize samples/*.rts
 *     rsep_samples diff samples/mcf-A-p0.rts samples/mcf-B-p0.rts
 *
 * `merge` pools many cells' series into one canonically-sorted CSV
 * (same row grammar as the per-cell `.csv` siblings), erroring on a
 * duplicate cell identity — the sample-side analogue of rsep_merge
 * over sharded stat dumps. `summarize` reduces each timeline to its
 * phase-behaviour headline: mean vs peak window IPC and the number of
 * abrupt phase changes, plus per-scenario geometric means. `diff`
 * aligns two cells' timelines on their shared cycle axis and reports
 * where the runs diverge: the first divergence cycle, each contiguous
 * divergence window, and the maximum per-field delta — the tool for
 * "same benchmark, two arms: when does behaviour split?" and for
 * pinning down exactly where a replayed or served run stopped matching
 * its reference.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/sample_io.hh"

namespace
{

using namespace rsep;

void
printHelp()
{
    std::printf(
        "usage: rsep_samples COMMAND [options] FILE [FILE ...]\n"
        "Inspect, dump, merge and summarize .rts time-series sample\n"
        "files (--sample-every on the bench drivers).\n"
        "\ncommands:\n"
        "  info             print each series' header summary (verifies\n"
        "                   the payload checksum)\n"
        "  dump             print rows as CSV (identity columns + one\n"
        "                   column per sample field)\n"
        "  merge            pool many cells' series into one\n"
        "                   canonically-sorted CSV (--csv, required);\n"
        "                   duplicate cell identities are an error\n"
        "  summarize        per-cell phase-behaviour headline (mean/peak\n"
        "                   window IPC, phase changes) and per-scenario\n"
        "                   gmean rows\n"
        "  diff             align exactly two series on their shared\n"
        "                   cycle axis and report where they diverge:\n"
        "                   first divergence cycle, contiguous divergence\n"
        "                   windows, max delta per field. The periods\n"
        "                   must match (different periods cannot align).\n"
        "                   Exit 0 = identical, 1 = divergent\n"
        "\noptions:\n"
        "  --limit N        dump: stop after N rows per file (0 = all,\n"
        "                   the default); diff: print at most N\n"
        "                   divergence windows\n"
        "  --csv PATH       merge: output path for the pooled CSV\n"
        "  --help, -h       show this help\n");
}

int
usageError(const std::string &msg)
{
    std::fprintf(stderr, "rsep_samples: %s (try --help)\n", msg.c_str());
    return 2;
}

/** Per-window IPC series of one cell: committed-inst delta over cycle
 *  delta per sample row (the final row is usually a partial window). */
std::vector<double>
windowIpcs(const std::vector<core::StatSample> &rows)
{
    std::vector<double> out;
    out.reserve(rows.size());
    u64 prev_cycle = 0;
    for (const core::StatSample &r : rows) {
        u64 cycles = r.cycle - prev_cycle;
        out.push_back(cycles ? static_cast<double>(r.committedInsts) /
                                   static_cast<double>(cycles)
                             : 0.0);
        prev_cycle = r.cycle;
    }
    return out;
}

/** Abrupt phase changes: adjacent full windows whose IPC moved by more
 *  than 25% of the earlier window's level. */
size_t
phaseChanges(const std::vector<double> &ipcs)
{
    constexpr double threshold = 0.25;
    size_t changes = 0;
    for (size_t i = 1; i < ipcs.size(); ++i) {
        double base = ipcs[i - 1];
        double rel = base > 0.0 ? std::fabs(ipcs[i] - base) / base
                    : ipcs[i] > 0.0 ? 1.0
                                    : 0.0;
        if (rel > threshold)
            ++changes;
    }
    return changes;
}

int
cmdInfo(const std::vector<std::string> &files)
{
    bool ok = true;
    for (const std::string &path : files) {
        sim::SamplesParse p = sim::parseSamplesFile(path);
        if (!p.ok()) {
            std::fprintf(stderr, "rsep_samples: %s\n", p.error.c_str());
            ok = false;
            continue;
        }
        std::printf("%s:\n", path.c_str());
        std::printf("  version      %u\n", p.header.version);
        std::printf("  workload     %s\n", p.header.workload.c_str());
        std::printf("  scenario     %s\n", p.header.scenario.c_str());
        std::printf("  config_hash  %s\n", p.header.configHash.c_str());
        std::printf("  phase        %u\n", p.header.phase);
        std::printf("  period       %llu\n",
                    static_cast<unsigned long long>(p.header.period));
        std::printf("  rows         %zu\n", p.rows.size());
        std::printf("  fields       %zu\n", core::sampleFieldCount());
        if (!p.rows.empty())
            std::printf("  last_cycle   %llu\n",
                        static_cast<unsigned long long>(
                            p.rows.back().cycle));
    }
    return ok ? 0 : 1;
}

int
cmdDump(const std::vector<std::string> &files, u64 limit)
{
    bool ok = true;
    bool header_done = false;
    for (const std::string &path : files) {
        sim::SamplesParse p = sim::parseSamplesFile(path);
        if (!p.ok()) {
            std::fprintf(stderr, "rsep_samples: %s\n", p.error.c_str());
            ok = false;
            continue;
        }
        std::vector<core::StatSample> rows = std::move(p.rows);
        if (limit && rows.size() > limit)
            rows.resize(limit);
        sim::writeSamplesCsv(std::cout, p.header, rows, !header_done);
        header_done = true;
    }
    return ok ? 0 : 1;
}

int
cmdMerge(const std::vector<std::string> &files, const std::string &csv_path)
{
    // Load everything first: duplicate-cell validation needs the full
    // set, and the canonical sort ignores argv order.
    std::vector<std::pair<sim::SampleSeriesHeader,
                          std::vector<core::StatSample>>>
        series;
    std::map<std::string, std::string> seen; // cell key -> origin path.
    for (const std::string &path : files) {
        sim::SamplesParse p = sim::parseSamplesFile(path);
        if (!p.ok()) {
            std::fprintf(stderr, "rsep_samples: %s\n", p.error.c_str());
            return 1;
        }
        std::string key = p.header.workload + "\x1f" +
                          p.header.configHash + "\x1f" +
                          std::to_string(p.header.phase);
        auto [it, inserted] = seen.emplace(key, path);
        if (!inserted) {
            std::fprintf(stderr,
                         "rsep_samples: duplicate cell (%s, %s, phase "
                         "%u) in %s and %s — shard outputs must be "
                         "disjoint\n",
                         p.header.workload.c_str(),
                         p.header.configHash.c_str(), p.header.phase,
                         it->second.c_str(), path.c_str());
            return 1;
        }
        series.emplace_back(std::move(p.header), std::move(p.rows));
    }
    // Canonical order, mirroring canonicalizeStatRows: a sharded
    // record-then-merge produces the same CSV as one unsharded run.
    std::sort(series.begin(), series.end(),
              [](const auto &a, const auto &b) {
                  if (a.first.workload != b.first.workload)
                      return a.first.workload < b.first.workload;
                  if (a.first.scenario != b.first.scenario)
                      return a.first.scenario < b.first.scenario;
                  if (a.first.configHash != b.first.configHash)
                      return a.first.configHash < b.first.configHash;
                  return a.first.phase < b.first.phase;
              });
    std::ofstream os(csv_path, std::ios::trunc);
    if (!os) {
        std::fprintf(stderr, "rsep_samples: %s: cannot open for writing\n",
                     csv_path.c_str());
        return 1;
    }
    bool header_done = false;
    size_t total_rows = 0;
    for (const auto &[header, rows] : series) {
        sim::writeSamplesCsv(os, header, rows, !header_done);
        header_done = true;
        total_rows += rows.size();
    }
    os.flush();
    if (!os) {
        std::fprintf(stderr, "rsep_samples: %s: write failed\n",
                     csv_path.c_str());
        return 1;
    }
    std::fprintf(stderr, "[merge] wrote %s (%zu series, %zu rows)\n",
                 csv_path.c_str(), series.size(), total_rows);
    return 0;
}

int
cmdSummarize(const std::vector<std::string> &files)
{
    bool ok = true;
    // Scenario -> per-cell mean IPCs, for the gmean rows.
    std::map<std::string, std::vector<double>> by_scenario;
    std::printf("%-14s %-20s %-7s %6s %9s %9s %10s %8s\n", "benchmark",
                "scenario", "phase", "rows", "mean_ipc", "peak_ipc",
                "peak/mean", "changes");
    for (const std::string &path : files) {
        sim::SamplesParse p = sim::parseSamplesFile(path);
        if (!p.ok()) {
            std::fprintf(stderr, "rsep_samples: %s\n", p.error.c_str());
            ok = false;
            continue;
        }
        if (p.rows.empty())
            continue;
        std::vector<double> ipcs = windowIpcs(p.rows);
        u64 total_insts = 0;
        for (const core::StatSample &r : p.rows)
            total_insts += r.committedInsts;
        u64 total_cycles = p.rows.back().cycle;
        double mean = total_cycles
                          ? static_cast<double>(total_insts) /
                                static_cast<double>(total_cycles)
                          : 0.0;
        double peak = *std::max_element(ipcs.begin(), ipcs.end());
        std::printf("%-14s %-20s p%-6u %6zu %9.3f %9.3f %10.2f %8zu\n",
                    p.header.workload.c_str(), p.header.scenario.c_str(),
                    p.header.phase, p.rows.size(), mean, peak,
                    mean > 0.0 ? peak / mean : 0.0, phaseChanges(ipcs));
        if (mean > 0.0)
            by_scenario[p.header.scenario].push_back(mean);
    }
    if (!by_scenario.empty()) {
        std::printf("\nper-scenario gmean of cell mean IPCs:\n");
        for (const auto &[scenario, means] : by_scenario)
            std::printf("  %-20s cells=%-4zu gmean_ipc=%.3f\n",
                        scenario.c_str(), means.size(),
                        geometricMean(means));
    }
    return ok ? 0 : 1;
}

/** Flatten one sample row into schema-order field values. */
std::vector<u64>
fieldValues(const core::StatSample &row)
{
    std::vector<u64> vals;
    vals.reserve(core::sampleFieldCount());
    core::StatSample copy = row;
    core::visitSampleFields(
        copy,
        [&](const char *, u64 &f, core::SampleFieldKind) {
            vals.push_back(f);
        });
    return vals;
}

/** Schema-order field names (mirrors fieldValues). */
std::vector<std::string>
fieldNames()
{
    std::vector<std::string> names;
    core::StatSample s;
    core::visitSampleFields(
        s, [&](const char *name, u64 &, core::SampleFieldKind) {
            names.emplace_back(name);
        });
    return names;
}

int
cmdDiff(const std::vector<std::string> &files, u64 limit)
{
    if (files.size() != 2) {
        std::fprintf(stderr,
                     "rsep_samples: diff takes exactly two files (got "
                     "%zu); try --help\n",
                     files.size());
        return 2;
    }
    sim::SamplesParse a = sim::parseSamplesFile(files[0]);
    sim::SamplesParse b = sim::parseSamplesFile(files[1]);
    for (const sim::SamplesParse *p : {&a, &b})
        if (!p->ok()) {
            std::fprintf(stderr, "rsep_samples: %s\n", p->error.c_str());
            return 2;
        }
    if (a.header.period != b.header.period) {
        std::fprintf(stderr,
                     "rsep_samples: diff: sample periods differ (%llu "
                     "vs %llu cycles) — timelines on different axes "
                     "cannot be aligned; re-sample one side\n",
                     static_cast<unsigned long long>(a.header.period),
                     static_cast<unsigned long long>(b.header.period));
        return 2;
    }

    auto cell_id = [](const sim::SamplesParse &p,
                      const std::string &path) {
        return p.header.workload + " / " + p.header.scenario +
               " (hash " + p.header.configHash + ", phase " +
               std::to_string(p.header.phase) + ")  [" + path + "]";
    };
    std::printf("A: %s\n", cell_id(a, files[0]).c_str());
    std::printf("B: %s\n", cell_id(b, files[1]).c_str());
    std::printf("period: %llu cycles; rows: %zu vs %zu\n",
                static_cast<unsigned long long>(a.header.period),
                a.rows.size(), b.rows.size());

    // The shared axis: both series sample at cycle k*period (plus one
    // final partial row), so row i of A and row i of B describe the
    // same window as long as both exist.
    size_t shared = std::min(a.rows.size(), b.rows.size());
    const std::vector<std::string> names = fieldNames();
    std::vector<u64> max_delta(names.size(), 0);
    std::vector<u64> max_delta_cycle(names.size(), 0);
    std::vector<bool> divergent(shared, false);
    size_t divergent_rows = 0;
    bool first_seen = false;
    u64 first_cycle = 0;

    for (size_t i = 0; i < shared; ++i) {
        std::vector<u64> va = fieldValues(a.rows[i]);
        std::vector<u64> vb = fieldValues(b.rows[i]);
        bool row_diff = false;
        for (size_t f = 0; f < names.size(); ++f) {
            u64 delta = va[f] > vb[f] ? va[f] - vb[f] : vb[f] - va[f];
            if (delta == 0)
                continue;
            row_diff = true;
            if (delta > max_delta[f]) {
                max_delta[f] = delta;
                max_delta_cycle[f] = a.rows[i].cycle;
            }
        }
        if (row_diff) {
            divergent[i] = true;
            ++divergent_rows;
            if (!first_seen) {
                first_seen = true;
                first_cycle = a.rows[i].cycle;
            }
        }
    }

    bool tails_differ = a.rows.size() != b.rows.size();
    if (!first_seen && !tails_differ) {
        std::printf("identical: %zu rows match across the full shared "
                    "axis\n",
                    shared);
        return 0;
    }

    if (first_seen) {
        std::printf("\nfirst divergence: cycle %llu (row %zu of the "
                    "shared axis)\n",
                    static_cast<unsigned long long>(first_cycle),
                    static_cast<size_t>(
                        std::find(divergent.begin(), divergent.end(),
                                  true) -
                        divergent.begin()));
        // Contiguous divergence windows over the shared axis.
        std::printf("divergence windows (%zu of %zu shared rows "
                    "diverge):\n",
                    divergent_rows, shared);
        size_t printed = 0;
        for (size_t i = 0; i < shared;) {
            if (!divergent[i]) {
                ++i;
                continue;
            }
            size_t j = i;
            while (j + 1 < shared && divergent[j + 1])
                ++j;
            if (limit == 0 || printed < limit)
                std::printf("  cycles %llu..%llu  (%zu row%s)\n",
                            static_cast<unsigned long long>(
                                a.rows[i].cycle),
                            static_cast<unsigned long long>(
                                a.rows[j].cycle),
                            j - i + 1, j == i ? "" : "s");
            ++printed;
            i = j + 1;
        }
        if (limit != 0 && printed > limit)
            std::printf("  ... %zu further window%s suppressed "
                        "(--limit %llu)\n",
                        printed - limit, printed - limit == 1 ? "" : "s",
                        static_cast<unsigned long long>(limit));
        std::printf("\nmax delta per field (differing fields only):\n");
        std::printf("  %-28s %14s %14s\n", "field", "max_delta",
                    "at_cycle");
        for (size_t f = 0; f < names.size(); ++f)
            if (max_delta[f] > 0)
                std::printf("  %-28s %14llu %14llu\n", names[f].c_str(),
                            static_cast<unsigned long long>(max_delta[f]),
                            static_cast<unsigned long long>(
                                max_delta_cycle[f]));
    }
    if (tails_differ) {
        const char *longer = a.rows.size() > b.rows.size() ? "A" : "B";
        size_t extra = std::max(a.rows.size(), b.rows.size()) - shared;
        std::printf("\ntail: %s has %zu row%s past the shared axis "
                    "(timelines end at cycle %llu vs %llu)\n",
                    longer, extra, extra == 1 ? "" : "s",
                    static_cast<unsigned long long>(
                        a.rows.empty() ? 0 : a.rows.back().cycle),
                    static_cast<unsigned long long>(
                        b.rows.empty() ? 0 : b.rows.back().cycle));
    }
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string command;
    std::vector<std::string> files;
    std::string csv_path;
    u64 limit = 0;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            printHelp();
            return 0;
        }
        if (a == "--limit" || a.rfind("--limit=", 0) == 0) {
            std::string value;
            if (a == "--limit") {
                if (i + 1 >= argc)
                    return usageError("--limit requires a value");
                value = argv[++i];
            } else {
                value = a.substr(8);
            }
            char *end = nullptr;
            limit = std::strtoull(value.c_str(), &end, 10);
            if (!end || *end != '\0' || value.empty())
                return usageError("invalid --limit '" + value + "'");
            continue;
        }
        if (a == "--csv" || a.rfind("--csv=", 0) == 0) {
            if (a == "--csv") {
                if (i + 1 >= argc)
                    return usageError("--csv requires a path");
                csv_path = argv[++i];
            } else {
                csv_path = a.substr(6);
            }
            continue;
        }
        if (!a.empty() && a[0] == '-')
            return usageError("unknown option '" + a + "'");
        if (command.empty())
            command = a;
        else
            files.push_back(a);
    }

    if (command.empty())
        return usageError("no command given (info, dump, merge or "
                          "summarize)");
    if (files.empty())
        return usageError("no sample files given");

    if (command == "info")
        return cmdInfo(files);
    if (command == "dump")
        return cmdDump(files, limit);
    if (command == "merge") {
        if (csv_path.empty())
            return usageError("merge requires --csv OUT");
        return cmdMerge(files, csv_path);
    }
    if (command == "summarize")
        return cmdSummarize(files);
    if (command == "diff")
        return cmdDiff(files, limit);
    return usageError("unknown command '" + command +
                      "' (expected info, dump, merge, summarize or "
                      "diff)");
}

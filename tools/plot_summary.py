#!/usr/bin/env python3
"""Render rsep benchmark outputs as figure images.

Three input formats are auto-detected:

1. `rsep_merge --summary` CSV (stat_merge.cc, writeFigureSummary):

    # per-benchmark speedup bars over '<baseline>' (percent)
    benchmark,scenario,config_hash,ipc_hmean,speedup_pct
    mcf,rsep,2ca460ee67616cb1,0.139027,8.67
    ...
    gmean,rsep,2ca460ee67616cb1,,3.12

   drawn as the Fig. 4/6/7-style grouped speedup bars (one group per
   benchmark, one bar per scenario arm) with the gmean rows as a
   legend annotation.

2. `rsep_bench --perf-json` output (a JSON object; detected by a
   leading '{'): per-workload live/replay Minst/s bars, and — when the
   run was given a --baseline — a second panel of replay speedup vs
   that baseline with the gmean annotated.

3. Time-series sample CSV (`rsep_samples dump`/`merge`, or the `.csv`
   sibling a `--sample-every` run writes next to each `.rts` file;
   detected by the `benchmark,scenario,config_hash,phase,cycle,...`
   header): per-window IPC timelines, one panel per (benchmark, phase)
   cell with one line per scenario arm — the phase-behaviour view of
   the paper's speedup bars.

All modes need matplotlib, which is deliberately NOT a build
dependency: when matplotlib is missing the script exits with status 2
and a clear message, so CI can treat the image as an optional artifact.

    rsep_merge --summary bars.csv shard*.csv
    tools/plot_summary.py bars.csv -o bars.png
    tools/plot_summary.py BENCH_PR6.json -o bench.png
    rsep_samples merge --csv timeline.csv samples/*.rts
    tools/plot_summary.py timeline.csv -o timeline.png
"""

import argparse
import csv
import json
import sys


def parse_summary(path):
    """Return (rows, gmeans): per-benchmark bars and per-arm gmean %."""
    rows = []  # (benchmark, scenario, speedup_pct)
    gmeans = {}  # scenario -> speedup_pct
    with open(path, newline="") as fh:
        reader = csv.reader(line for line in fh if not line.startswith("#"))
        header = next(reader, None)
        expect = ["benchmark", "scenario", "config_hash", "ipc_hmean",
                  "speedup_pct"]
        if header != expect:
            sys.exit(f"{path}: not an rsep_merge --summary file "
                     f"(header {header!r}, expected {expect!r})")
        for rec in reader:
            if len(rec) != len(expect):
                sys.exit(f"{path}: malformed row {rec!r}")
            bench, scenario, _, _, pct = rec
            try:
                pct = float(pct)
            except ValueError:
                sys.exit(f"{path}: bad speedup_pct in row {rec!r}")
            if bench == "gmean":
                gmeans[scenario] = pct
            else:
                rows.append((bench, scenario, pct))
    if not rows:
        sys.exit(f"{path}: no per-benchmark rows found")
    return rows, gmeans


def load_matplotlib():
    try:
        import matplotlib
        matplotlib.use("Agg")  # headless: no display needed in CI.
        import matplotlib.pyplot as plt
        return plt
    except ImportError:
        sys.stderr.write(
            "plot_summary: matplotlib is not available; skipping figure "
            "rendering (pip install matplotlib to enable)\n")
        sys.exit(2)


def plot_perf_json(path, args):
    """Render an rsep_bench --perf-json file: per-workload live/replay
    Minst/s bars, plus a replay-speedup-vs-baseline panel when the run
    had a --baseline."""
    with open(path) as fh:
        data = json.load(fh)
    rows = data.get("single_thread") or []
    if not rows:
        sys.exit(f"{path}: no single_thread rows in perf JSON")
    plt = load_matplotlib()

    names = [r["workload"] for r in rows]
    live = [r["live_minst_per_s"] for r in rows]
    replay = [r["replay_minst_per_s"] for r in rows]
    speedups = [r.get("speedup_vs_baseline") for r in rows]
    have_baseline = any(s is not None for s in speedups)

    npanels = 2 if have_baseline else 1
    fig_w = max(7.0, 0.42 * len(names))
    fig, axes = plt.subplots(npanels, 1, figsize=(fig_w, 4.0 * npanels),
                             sharex=True, squeeze=False)
    ax = axes[0][0]
    xs = range(len(names))
    width = 0.4
    ax.bar([x - width / 2 for x in xs], live, width=width, label="live")
    ax.bar([x + width / 2 for x in xs], replay, width=width, label="replay")
    gm = data.get("gmean", {})
    title = args.title
    if title == DEFAULT_TITLE:
        title = f"{data.get('suite', 'rsep_bench')} throughput " \
                f"(workload set: {data.get('workload_set', 'all')})"
    if "live_minst_per_s" in gm:
        title += (f" — gmean live {gm['live_minst_per_s']:.2f} / "
                  f"replay {gm['replay_minst_per_s']:.2f} Minst/s")
    ax.set_title(title, fontsize=10)
    ax.set_ylabel("Minst/s")
    ax.legend(fontsize=8)

    if have_baseline:
        ax2 = axes[1][0]
        sx = [x for x, s in zip(xs, speedups) if s is not None]
        sy = [s for s in speedups if s is not None]
        ax2.bar(sx, sy, width=0.6, color="tab:green")
        ax2.axhline(1.0, color="black", linewidth=0.8)
        label = "replay speedup vs baseline"
        if "speedup_vs_baseline" in gm:
            label += f" (gmean {gm['speedup_vs_baseline']:.3f}x)"
        ax2.set_ylabel("speedup (x)")
        ax2.set_title(label, fontsize=10)

    axes[-1][0].set_xticks(list(xs))
    axes[-1][0].set_xticklabels(names, rotation=60, ha="right", fontsize=8)
    fig.tight_layout()
    fig.savefig(args.output, dpi=args.dpi)
    print(f"plot_summary: wrote {args.output} "
          f"({len(names)} workloads, {npanels} panel(s))")


# The identity-column prefix of a sample CSV (sim/sample_io.hh,
# sampleCsvIdColumns + the leading sample field).
SAMPLE_CSV_PREFIX = "benchmark,scenario,config_hash,phase,cycle"


def parse_samples(path):
    """Return {(benchmark, phase): {scenario: [(cycle, window_ipc)]}}.

    Window IPC is the committed-inst delta of each row (the columns are
    already deltas) over the row's cycle-axis width; the final row is
    usually a partial window and is plotted as-is at its true width.
    """
    cells = {}
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        need = {"benchmark", "scenario", "phase", "cycle",
                "committed_insts"}
        missing = need - set(reader.fieldnames or [])
        if missing:
            sys.exit(f"{path}: not a sample CSV (missing columns "
                     f"{sorted(missing)!r})")
        prev_cycle = {}  # (benchmark, scenario, phase) -> last cycle.
        for rec in reader:
            try:
                cycle = int(rec["cycle"])
                insts = int(rec["committed_insts"])
                phase = int(rec["phase"])
            except ValueError:
                sys.exit(f"{path}: malformed sample row {rec!r}")
            key = (rec["benchmark"], rec["scenario"], phase)
            width = cycle - prev_cycle.get(key, 0)
            prev_cycle[key] = cycle
            ipc = insts / width if width > 0 else 0.0
            panel = cells.setdefault((rec["benchmark"], phase), {})
            panel.setdefault(rec["scenario"], []).append((cycle, ipc))
    if not cells:
        sys.exit(f"{path}: no sample rows found")
    return cells


def plot_samples(path, args):
    """Render a sample CSV as per-cell window-IPC timelines."""
    cells = parse_samples(path)
    plt = load_matplotlib()

    panels = sorted(cells)  # (benchmark, phase), canonical order.
    fig, axes = plt.subplots(len(panels), 1,
                             figsize=(8.0, 2.2 * len(panels) + 1.0),
                             sharex=False, squeeze=False)
    total_series = 0
    for ax, key in zip((a[0] for a in axes), panels):
        bench, phase = key
        for scenario in sorted(cells[key]):
            points = cells[key][scenario]
            ax.plot([c for c, _ in points], [i for _, i in points],
                    linewidth=1.0, label=scenario)
            total_series += 1
        ax.set_title(f"{bench} (phase {phase})", fontsize=9, loc="left")
        ax.set_ylabel("window IPC", fontsize=8)
        ax.tick_params(labelsize=7)
        ax.legend(fontsize=7, ncol=2)
        ax.margins(x=0.01)
    axes[-1][0].set_xlabel("measurement cycle", fontsize=8)
    title = args.title
    if title == DEFAULT_TITLE:
        title = "Per-window IPC timelines (--sample-every)"
    fig.suptitle(title, fontsize=10)
    fig.tight_layout(rect=(0, 0, 1, 0.97))
    fig.savefig(args.output, dpi=args.dpi)
    print(f"plot_summary: wrote {args.output} "
          f"({len(panels)} panel(s), {total_series} series)")


DEFAULT_TITLE = "Speedup over baseline (percent)"


def main():
    ap = argparse.ArgumentParser(
        description="Turn rsep_merge --summary CSV or rsep_bench "
                    "--perf-json output into figure images.")
    ap.add_argument("summary", help="summary CSV from rsep_merge --summary, "
                                    "a perf JSON from rsep_bench, or a "
                                    "sample CSV from rsep_samples "
                                    "dump/merge")
    ap.add_argument("-o", "--output", default="summary.png",
                    help="output image path (default: %(default)s; the "
                         "extension picks the format)")
    ap.add_argument("--title", default=DEFAULT_TITLE, help="figure title")
    ap.add_argument("--dpi", type=int, default=150)
    args = ap.parse_args()

    # A perf JSON starts with '{'; a sample CSV declares itself by its
    # identity-column header; everything else is the merge summary.
    with open(args.summary) as fh:
        first = fh.read(128).lstrip()
    if first.startswith("{"):
        plot_perf_json(args.summary, args)
        return
    if first.startswith(SAMPLE_CSV_PREFIX):
        plot_samples(args.summary, args)
        return

    rows, gmeans = parse_summary(args.summary)
    plt = load_matplotlib()

    benchmarks = []
    for bench, _, _ in rows:
        if bench not in benchmarks:
            benchmarks.append(bench)
    scenarios = []
    for _, scenario, _ in rows:
        if scenario not in scenarios:
            scenarios.append(scenario)
    values = {(b, s): None for b in benchmarks for s in scenarios}
    for bench, scenario, pct in rows:
        values[(bench, scenario)] = pct

    width = 0.8 / max(1, len(scenarios))
    fig_w = max(7.0, 0.38 * len(benchmarks) * max(1, len(scenarios)))
    fig, ax = plt.subplots(figsize=(fig_w, 4.5))
    for si, scenario in enumerate(scenarios):
        xs, ys = [], []
        for bi, bench in enumerate(benchmarks):
            pct = values[(bench, scenario)]
            if pct is None:
                continue
            xs.append(bi + (si - (len(scenarios) - 1) / 2) * width)
            ys.append(pct)
        label = scenario
        if scenario in gmeans:
            label += f" (gmean {gmeans[scenario]:+.2f}%)"
        ax.bar(xs, ys, width=width, label=label)

    ax.set_xticks(range(len(benchmarks)))
    ax.set_xticklabels(benchmarks, rotation=60, ha="right", fontsize=8)
    ax.set_ylabel("speedup over baseline (%)")
    ax.set_title(args.title)
    ax.axhline(0.0, color="black", linewidth=0.8)
    ax.legend(fontsize=8)
    ax.margins(x=0.01)
    fig.tight_layout()
    fig.savefig(args.output, dpi=args.dpi)
    print(f"plot_summary: wrote {args.output} "
          f"({len(benchmarks)} benchmarks x {len(scenarios)} arms)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Render `rsep_merge --summary` CSV output as the paper's figure images.

The summary format (stat_merge.cc, writeFigureSummary) is:

    # per-benchmark speedup bars over '<baseline>' (percent)
    benchmark,scenario,config_hash,ipc_hmean,speedup_pct
    mcf,rsep,2ca460ee67616cb1,0.139027,8.67
    ...
    gmean,rsep,2ca460ee67616cb1,,3.12

This script draws the Fig. 4/6/7-style grouped speedup bars (one group
per benchmark, one bar per scenario arm) with the gmean rows as a
legend annotation. It needs matplotlib but is deliberately NOT a build
dependency: when matplotlib is missing it exits with status 2 and a
clear message, so CI can treat the image as an optional artifact.

    rsep_merge --summary bars.csv shard*.csv
    tools/plot_summary.py bars.csv -o bars.png
"""

import argparse
import csv
import sys


def parse_summary(path):
    """Return (rows, gmeans): per-benchmark bars and per-arm gmean %."""
    rows = []  # (benchmark, scenario, speedup_pct)
    gmeans = {}  # scenario -> speedup_pct
    with open(path, newline="") as fh:
        reader = csv.reader(line for line in fh if not line.startswith("#"))
        header = next(reader, None)
        expect = ["benchmark", "scenario", "config_hash", "ipc_hmean",
                  "speedup_pct"]
        if header != expect:
            sys.exit(f"{path}: not an rsep_merge --summary file "
                     f"(header {header!r}, expected {expect!r})")
        for rec in reader:
            if len(rec) != len(expect):
                sys.exit(f"{path}: malformed row {rec!r}")
            bench, scenario, _, _, pct = rec
            try:
                pct = float(pct)
            except ValueError:
                sys.exit(f"{path}: bad speedup_pct in row {rec!r}")
            if bench == "gmean":
                gmeans[scenario] = pct
            else:
                rows.append((bench, scenario, pct))
    if not rows:
        sys.exit(f"{path}: no per-benchmark rows found")
    return rows, gmeans


def main():
    ap = argparse.ArgumentParser(
        description="Turn rsep_merge --summary CSV into figure images.")
    ap.add_argument("summary", help="summary CSV from rsep_merge --summary")
    ap.add_argument("-o", "--output", default="summary.png",
                    help="output image path (default: %(default)s; the "
                         "extension picks the format)")
    ap.add_argument("--title", default="Speedup over baseline (percent)",
                    help="figure title")
    ap.add_argument("--dpi", type=int, default=150)
    args = ap.parse_args()

    rows, gmeans = parse_summary(args.summary)

    try:
        import matplotlib
        matplotlib.use("Agg")  # headless: no display needed in CI.
        import matplotlib.pyplot as plt
    except ImportError:
        sys.stderr.write(
            "plot_summary: matplotlib is not available; skipping figure "
            "rendering (pip install matplotlib to enable)\n")
        sys.exit(2)

    benchmarks = []
    for bench, _, _ in rows:
        if bench not in benchmarks:
            benchmarks.append(bench)
    scenarios = []
    for _, scenario, _ in rows:
        if scenario not in scenarios:
            scenarios.append(scenario)
    values = {(b, s): None for b in benchmarks for s in scenarios}
    for bench, scenario, pct in rows:
        values[(bench, scenario)] = pct

    width = 0.8 / max(1, len(scenarios))
    fig_w = max(7.0, 0.38 * len(benchmarks) * max(1, len(scenarios)))
    fig, ax = plt.subplots(figsize=(fig_w, 4.5))
    for si, scenario in enumerate(scenarios):
        xs, ys = [], []
        for bi, bench in enumerate(benchmarks):
            pct = values[(bench, scenario)]
            if pct is None:
                continue
            xs.append(bi + (si - (len(scenarios) - 1) / 2) * width)
            ys.append(pct)
        label = scenario
        if scenario in gmeans:
            label += f" (gmean {gmeans[scenario]:+.2f}%)"
        ax.bar(xs, ys, width=width, label=label)

    ax.set_xticks(range(len(benchmarks)))
    ax.set_xticklabels(benchmarks, rotation=60, ha="right", fontsize=8)
    ax.set_ylabel("speedup over baseline (%)")
    ax.set_title(args.title)
    ax.axhline(0.0, color="black", linewidth=0.8)
    ax.legend(fontsize=8)
    ax.margins(x=0.01)
    fig.tight_layout()
    fig.savefig(args.output, dpi=args.dpi)
    print(f"plot_summary: wrote {args.output} "
          f"({len(benchmarks)} benchmarks x {len(scenarios)} arms)")


if __name__ == "__main__":
    main()

/**
 * @file
 * rsep_serve: the warm simulation daemon (DESIGN.md §13).
 *
 * Starts a serve::Server on a Unix-domain socket and runs until
 * SIGINT/SIGTERM. Every driver becomes a client with `--connect
 * <socket>`: the daemon keeps the workload registry, the decoded-trace
 * cache and the `--cache-dir` result cache resident across requests,
 * batches concurrently-pending requests into one shared thread pool,
 * and streams each client its cells as they complete — with output
 * byte-identical to a direct run.
 */

#include <csignal>
#include <cstdio>
#include <cstring>

#include "common/env.hh"
#include "common/fault.hh"
#include "serve/server.hh"
#include "sim/runner.hh"
#include "wl/trace_cache.hh"

using namespace rsep;

namespace
{

int
usage(int rc)
{
    std::printf(
        "usage: rsep_serve [options]\n"
        "Warm simulation daemon: serve driver runs over a Unix socket,\n"
        "amortizing startup, trace decode and caches across requests.\n"
        "\noptions:\n"
        "  --socket PATH       listen here (default: rsep_serve.sock).\n"
        "                      A stale socket file left by a dead server\n"
        "                      is replaced; a live one is an error\n"
        "  --jobs N, -jN       worker threads shared by all requests\n"
        "                      (0 = auto: RSEP_JOBS or the hardware\n"
        "                      thread count)\n"
        "  --cache-dir PATH    persistent per-cell result cache shared\n"
        "                      by every request\n"
        "  --trace-cache-mb N  bound the decoded-trace cache (LRU);\n"
        "                      0 = unlimited (default 1024)\n"
        "  --max-inflight-cells N\n"
        "                      admission control: answer Busy (with a\n"
        "                      retry-after hint) instead of queueing\n"
        "                      when the server-wide in-flight cell\n"
        "                      count would exceed N (0 = unlimited)\n"
        "  --max-queue-depth N admission control: at most N Submit\n"
        "                      requests in flight before new ones are\n"
        "                      answered Busy (0 = unlimited)\n"
        "  --idle-timeout SEC  reap connections idle longer than SEC\n"
        "                      between requests (0 = never)\n"
        "  --fault SPEC        arm deterministic fault injection\n"
        "                      (testing; same grammar as RSEP_FAULT —\n"
        "                      DESIGN.md §14)\n"
        "  --quiet             no per-request progress on stderr\n"
        "  --help, -h          show this help\n"
        "\nClients: any driver with --connect PATH, e.g.\n"
        "  bench_fig4_speedup --scenario-file sweep.scn --csv out.csv \\\n"
        "      --connect rsep_serve.sock\n"
        "Stop with SIGINT/SIGTERM; in-flight requests drain first.\n");
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    fault::initFromEnv();
    serve::ServeOptions opts;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto valueOf = [&](const char *flag, std::string &value) -> int {
            size_t n = std::strlen(flag);
            if (a.compare(0, n, flag) != 0)
                return 0;
            if (a.size() == n) {
                if (i + 1 >= argc)
                    return -1;
                value = argv[++i];
                return 1;
            }
            if (a[n] != '=')
                return 0;
            value = a.substr(n + 1);
            return 1;
        };

        if (a == "--help" || a == "-h")
            return usage(0);
        if (a == "--quiet") {
            opts.progress = false;
            continue;
        }
        std::string value, err;
        int hit;
        if ((hit = valueOf("--socket", value)) != 0) {
            if (hit < 0 || value.empty()) {
                std::fprintf(stderr,
                             "rsep_serve: --socket requires a path\n");
                return 2;
            }
            opts.socketPath = value;
            continue;
        }
        if ((hit = valueOf("--cache-dir", value)) != 0) {
            if (hit < 0 || value.empty()) {
                std::fprintf(stderr,
                             "rsep_serve: --cache-dir requires a path\n");
                return 2;
            }
            opts.cacheDir = value;
            continue;
        }
        if ((hit = valueOf("--trace-cache-mb", value)) != 0) {
            u64 mb = 0;
            if (hit < 0 || !parseU64(value, mb) || mb > (1ull << 40)) {
                std::fprintf(stderr,
                             "rsep_serve: invalid --trace-cache-mb\n");
                return 2;
            }
            wl::traceCache().setCapacityBytes(mb << 20);
            continue;
        }
        if ((hit = valueOf("--max-inflight-cells", value)) != 0) {
            if (hit < 0 || !parseU64(value, opts.maxInflightCells)) {
                std::fprintf(stderr,
                             "rsep_serve: invalid --max-inflight-cells\n");
                return 2;
            }
            continue;
        }
        if ((hit = valueOf("--max-queue-depth", value)) != 0) {
            if (hit < 0 || !parseU64(value, opts.maxQueueDepth)) {
                std::fprintf(stderr,
                             "rsep_serve: invalid --max-queue-depth\n");
                return 2;
            }
            continue;
        }
        if ((hit = valueOf("--idle-timeout", value)) != 0) {
            if (hit < 0 || !parseU64(value, opts.idleTimeoutSec)) {
                std::fprintf(stderr,
                             "rsep_serve: invalid --idle-timeout\n");
                return 2;
            }
            continue;
        }
        if ((hit = valueOf("--fault", value)) != 0) {
            if (hit < 0 || !fault::armFromSpec(value, &err)) {
                std::fprintf(stderr, "rsep_serve: %s\n",
                             hit < 0 ? "--fault requires a spec"
                                     : err.c_str());
                return 2;
            }
            continue;
        }
        if (a == "--jobs" || a == "-j" || a.rfind("--jobs=", 0) == 0 ||
            (a.rfind("-j", 0) == 0 && a.size() > 2)) {
            char *slice[3] = {argv[0], argv[i],
                              i + 1 < argc ? argv[i + 1] : nullptr};
            int slice_argc =
                (a == "--jobs" || a == "-j") && slice[2] ? 3 : 2;
            unsigned jobs = 0;
            if (!sim::parseJobsArg(slice_argc, slice, jobs, err)) {
                std::fprintf(stderr, "rsep_serve: %s\n", err.c_str());
                return 2;
            }
            opts.jobs = jobs;
            if (slice_argc == 3)
                ++i;
            continue;
        }
        std::fprintf(stderr, "rsep_serve: unknown option '%s'\n",
                     a.c_str());
        return usage(2);
    }

    // Block the shutdown signals before the server spawns its threads
    // (they inherit the mask), then wait for one synchronously: no
    // async-signal-safety contortions, no handler races.
    sigset_t sigs;
    sigemptyset(&sigs);
    sigaddset(&sigs, SIGINT);
    sigaddset(&sigs, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

    serve::Server server(opts);
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "rsep_serve: %s\n", err.c_str());
        return 1;
    }

    int sig = 0;
    sigwait(&sigs, &sig);
    if (opts.progress)
        std::fprintf(stderr,
                     "[serve] %s: draining in-flight requests...\n",
                     sig == SIGTERM ? "SIGTERM" : "SIGINT");
    server.stop();

    serve::Server::Counters c = server.counters();
    wl::DecodedTraceCache::Stats tc = wl::traceCache().stats();
    if (opts.progress)
        std::fprintf(
            stderr,
            "[serve] served %llu request%s (%llu error%s): %llu cells "
            "run, %llu cache hits, %llu batched; trace decode "
            "%llu hit%s / %llu miss%s\n",
            static_cast<unsigned long long>(c.requests),
            c.requests == 1 ? "" : "s",
            static_cast<unsigned long long>(c.errors),
            c.errors == 1 ? "" : "s",
            static_cast<unsigned long long>(c.cellsRun),
            static_cast<unsigned long long>(c.cacheHits),
            static_cast<unsigned long long>(c.batchedCells),
            static_cast<unsigned long long>(tc.hits),
            tc.hits == 1 ? "" : "s",
            static_cast<unsigned long long>(tc.misses),
            tc.misses == 1 ? "" : "es");
    if (opts.progress)
        std::fprintf(
            stderr,
            "[serve] serve.retries_served=%llu "
            "serve.busy_rejections=%llu\n",
            static_cast<unsigned long long>(c.retriesServed),
            static_cast<unsigned long long>(c.busyRejections));
    return 0;
}

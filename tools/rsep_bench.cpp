/**
 * @file
 * rsep_bench — reproducible simulator-throughput harness (the perf
 * counterpart of the figure drivers; DESIGN.md §9).
 *
 * Three measurements, all wall-clock on the current host:
 *
 *  1. Single-thread cycle-loop throughput per workload, in committed
 *     Minst/s, in two modes: *live* (pipeline fed by the functional
 *     emulator — what a cold sweep pays) and *replay* (pipeline fed by
 *     an in-memory recorded trace — the pure cycle loop, what a warm
 *     fleet worker pays). Grouped per kernel archetype.
 *  2. The replay-vs-live speedup implied by (1).
 *  3. runMatrix wall-clock vs thread count, for both `--steal`
 *     granularities (cell and window) — the ROADMAP scaling study.
 *
 * `--perf-json` writes the whole report as JSON (BENCH_PR5.json is a
 * checked-in run of it); `--baseline` points at a flat
 * "workload live replay" file (see --write-baseline) from an older
 * build so the report carries before/after speedups.
 *
 *     rsep_bench --perf-json BENCH.json \
 *                --baseline bench/baselines/pr4_cycle_loop.txt
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hh"
#include "core/pipeline.hh"
#include "sim/runner.hh"
#include "sim/scenario.hh"
#include "wl/emulator.hh"
#include "wl/suite.hh"
#include "wl/trace_cache.hh"
#include "wl/trace_io.hh"
#include "wl/workload_spec.hh"

namespace
{

using namespace rsep;
using Clock = std::chrono::steady_clock;

double
secsBetween(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

struct WorkloadPerf
{
    std::string workload;
    std::string archetype;
    double liveMips = 0.0;
    double replayMips = 0.0;
    double baselineReplayMips = 0.0; ///< 0 when no baseline given.
};

struct ScalingPoint
{
    const char *steal;
    unsigned jobs;
    double wallSecs;
};

/** Cost of `--sample-every` on the pure cycle loop (one replay cell,
 *  paired off/on rounds). */
struct SamplingOverhead
{
    std::string workload;
    u64 period = 0;        ///< sample period in cycles.
    double offSecs = 0.0;  ///< best sampling-off wall seconds.
    double onSecs = 0.0;   ///< best sampling-on wall seconds.
    u64 rows = 0;          ///< sample rows per measured run.
    double overheadPct() const
    {
        return offSecs > 0.0 ? (onSecs / offSecs - 1.0) * 100.0 : 0.0;
    }
    double samplesPerSec() const
    {
        return onSecs > 0.0 ? static_cast<double>(rows) / onSecs : 0.0;
    }
};

struct Options
{
    std::string perfJsonPath;
    std::string baselinePath;
    std::string writeBaselinePath;
    std::string scenario = "baseline";
    std::string workloadSet;            ///< named set (see --workload-set).
    std::vector<std::string> workloads; ///< empty = full suite.
    u64 warmup = 20000;
    u64 measure = 200000;
    u64 scalingMeasure = 8000;
    std::vector<unsigned> threads = {1, 2, 4};
    bool scaling = true;
    /** Sampling-overhead study: cycle period of the sampled run
     *  (0 skips the study; default mirrors a typical --sample-every). */
    u64 sampleEvery = 10000;

    // ---- replay-sweep mode (--sweep): the trace data-path benchmark.
    bool sweep = false;
    /** Arms of the sweep; every arm replays the SAME traces, so S arms
     *  pay one decode through the shared trace cache. */
    std::vector<std::string> sweepScenarios = {"baseline", "rsep", "vpred",
                                               "rsep+vpred"};
    std::string sweepTraceDir = "bench_sweep_traces";
    /** Replay sizing: short windows out of long recordings, the
     *  record-once-replay-many shape (replay_sweep.scn). */
    u64 sweepWarmup = 1000;
    u64 sweepMeasure = 4000;
    u32 sweepCheckpoints = 4;
    /** Record sizing: full-length traces each cell replays a window
     *  of (replay_sweep_record.scn). */
    u64 sweepRecordWarmup = 75000;
    u64 sweepRecordMeasure = 225000;
    unsigned sweepRounds = 3;
    unsigned sweepJobs = 1; ///< single worker: paired-protocol timing.
    double sweepBaselineWall = 0.0; ///< externally timed older build.
};

void
printHelp()
{
    std::printf(
        "usage: rsep_bench [options]\n"
        "Measure simulator throughput: single-thread cycle-loop Minst/s\n"
        "per workload (live emulation vs recorded-trace replay) and\n"
        "runMatrix thread scaling for both --steal granularities.\n"
        "\noptions:\n"
        "  --perf-json PATH       write the report as JSON\n"
        "  --baseline PATH        flat 'workload live replay' Minst/s\n"
        "                         file from an older build; the report\n"
        "                         then carries speedup-vs-baseline\n"
        "  --write-baseline PATH  write this run's numbers in the\n"
        "                         --baseline format\n"
        "  --scenario NAME        timing configuration (default:\n"
        "                         baseline)\n"
        "  --workload A[,B...]    subset of workloads (default: the\n"
        "                         full suite; repeatable)\n"
        "  --workload-set NAME    named subset: 'branchy' (the\n"
        "                         branch-bound predictor set), 'all',\n"
        "                         or any kernel archetype name\n"
        "  --warmup N             warmup instructions per workload\n"
        "                         (default 20000)\n"
        "  --measure N            timed instructions per workload\n"
        "                         (default 200000)\n"
        "  --threads A[,B...]     thread counts of the scaling study\n"
        "                         (default 1,2,4)\n"
        "  --scaling-measure N    timed instructions per cell in the\n"
        "                         scaling study (default 8000)\n"
        "  --no-scaling           skip the scaling study\n"
        "  --sample-every N       sampling-overhead study period in\n"
        "                         cycles (default 10000; 0 skips it):\n"
        "                         times one branchy replay cell with the\n"
        "                         stat sampler off vs on and reports the\n"
        "                         overhead ratio and samples/s\n"
        "  --sweep                run the replay-sweep benchmark instead:\n"
        "                         record full-sizing traces once, then\n"
        "                         time a multi-arm replay matrix of short\n"
        "                         windows (every cell shares one decode\n"
        "                         through the trace cache); reports wall\n"
        "                         time and the timing.trace_* counters\n"
        "                         per round\n"
        "  --sweep-scenarios A[,B...]\n"
        "                         arms of the sweep (default baseline,\n"
        "                         rsep,vpred,rsep+vpred; record/replay\n"
        "                         sizing is pinned to the checked-in\n"
        "                         examples/scenarios/replay_sweep*.scn)\n"
        "  --sweep-trace-dir DIR  where the sweep records/replays traces\n"
        "                         (default bench_sweep_traces)\n"
        "  --sweep-rounds N       timed replay rounds (default 3; round\n"
        "                         1 is decode-cold, later rounds replay\n"
        "                         fully cache-warm)\n"
        "  --sweep-baseline-wall S\n"
        "                         wall seconds of the same sweep on an\n"
        "                         older build (externally timed, paired\n"
        "                         rounds); the report then carries\n"
        "                         speedup_vs_baseline\n"
        "  --help, -h             show this help\n");
}

int
usageError(const std::string &msg)
{
    std::fprintf(stderr, "rsep_bench: %s (try --help)\n", msg.c_str());
    return 2;
}

/** Archetype per registered workload key. */
std::map<std::string, std::string>
archetypeMap()
{
    std::map<std::string, std::string> out;
    for (const wl::WorkloadInfo &info : wl::listWorkloads())
        out[info.key] = info.archetype;
    return out;
}

/**
 * Resolve a --workload-set name to suite workloads. 'branchy' is the
 * branch-bound set the predictor-hot-path PRs are gated on; 'all' is
 * the full suite; any kernel archetype name selects its suite members.
 */
bool
resolveWorkloadSet(const std::string &set,
                   const std::map<std::string, std::string> &archetypes,
                   std::vector<std::string> &out, std::string &err)
{
    if (set == "all") {
        out = wl::suiteNames();
        return true;
    }
    if (set == "branchy") {
        // High branch-event density: every TAGE/ITTAGE lookup is on
        // the critical path, so these gate predictor-path perf work.
        for (const char *name : {"gobmk", "sjeng", "astar", "perlbench"})
            out.push_back(name);
        return true;
    }
    for (const std::string &name : wl::suiteNames())
        if (auto at = archetypes.find(name);
            at != archetypes.end() && at->second == set)
            out.push_back(name);
    if (out.empty()) {
        err = "unknown workload set '" + set +
              "' (want branchy, all, or an archetype name)";
        return false;
    }
    return true;
}

/**
 * Time one workload's cycle loop: live (emulator-fed, teeing the
 * stream) and replay (fed back the recorded stream from memory, so
 * no emulation and no file I/O is on the clock).
 */
WorkloadPerf
timeWorkload(const sim::SimConfig &cfg, const std::string &name,
             u64 warmup, u64 measure)
{
    WorkloadPerf perf;
    perf.workload = name;

    wl::Workload w = wl::makeWorkload(name);
    wl::Emulator emu(w.program);
    emu.resetArchState();
    w.init(emu, 0);

    wl::RecordingTraceSource rec(emu);
    {
        core::Pipeline pipe(cfg.core, cfg.mech, rec, cfg.seed ^ 0x9e37);
        pipe.run(warmup);
        pipe.resetStats();
        auto t0 = Clock::now();
        pipe.run(measure);
        auto t1 = Clock::now();
        perf.liveMips =
            static_cast<double>(pipe.stats().committedInsts.value()) /
            1e6 / secsBetween(t0, t1);
    }
    // Slack so the replay's fetch lookahead cannot exhaust the stream.
    rec.recordSlack(8192);

    wl::TraceParse parse;
    parse.header.workload = name;
    parse.header.programLength = w.program.size();
    parse.header.records = rec.records().size();
    parse.records = rec.records();
    wl::ReplayTraceSource src(std::move(parse), w.program, "<memory>");
    {
        core::Pipeline pipe(cfg.core, cfg.mech, src, cfg.seed ^ 0x9e37);
        pipe.run(warmup);
        pipe.resetStats();
        auto t0 = Clock::now();
        pipe.run(measure);
        auto t1 = Clock::now();
        perf.replayMips =
            static_cast<double>(pipe.stats().committedInsts.value()) /
            1e6 / secsBetween(t0, t1);
    }
    return perf;
}

/**
 * Time the sampling hook on one branchy replay cell: record the trace
 * once, then alternate sampling-off / sampling-on replay rounds (best
 * of 3 pairs, paired so host noise hits both arms alike). The off arm
 * exercises the detached-sampler path — one null-check per loop
 * iteration — and the on arm the full snapshot + delta row cost at the
 * given period. Acceptance (CI perf smoke): overhead under ~3%.
 */
SamplingOverhead
timeSamplingOverhead(const sim::SimConfig &cfg, const std::string &name,
                     u64 warmup, u64 measure, u64 period)
{
    SamplingOverhead so;
    so.workload = name;
    so.period = period;

    wl::Workload w = wl::makeWorkload(name);
    wl::Emulator emu(w.program);
    emu.resetArchState();
    w.init(emu, 0);
    wl::RecordingTraceSource rec(emu);
    {
        core::Pipeline pipe(cfg.core, cfg.mech, rec, cfg.seed ^ 0x9e37);
        pipe.run(warmup + measure);
    }
    rec.recordSlack(8192);

    wl::TraceParse parse;
    parse.header.workload = name;
    parse.header.programLength = w.program.size();
    parse.header.records = rec.records().size();
    parse.records = rec.records();

    auto timed_run = [&](bool sampling) {
        wl::TraceParse copy = parse;
        wl::ReplayTraceSource src(std::move(copy), w.program, "<memory>");
        core::Pipeline pipe(cfg.core, cfg.mech, src, cfg.seed ^ 0x9e37);
        pipe.run(warmup);
        pipe.resetStats();
        core::StatSampler sampler(period);
        if (sampling)
            pipe.attachSampler(&sampler);
        auto t0 = Clock::now();
        pipe.run(measure);
        if (sampling)
            pipe.finishSampling();
        double secs = secsBetween(t0, Clock::now());
        if (sampling)
            so.rows = sampler.rows().size();
        return secs;
    };

    so.offSecs = so.onSecs = 1e30;
    for (int round = 0; round < 3; ++round) {
        so.offSecs = std::min(so.offSecs, timed_run(false));
        so.onSecs = std::min(so.onSecs, timed_run(true));
    }
    return so;
}

/** One timed runMatrix sweep (suite x 1 scenario, quiet). */
double
timeMatrix(const sim::SimConfig &cfg,
           const std::vector<std::string> &benchmarks, unsigned jobs,
           sim::StealMode steal)
{
    sim::MatrixOptions opts;
    opts.jobs = jobs;
    opts.progress = false;
    opts.steal = steal;
    std::vector<sim::SimConfig> configs{cfg};
    auto t0 = Clock::now();
    sim::runMatrix(configs, benchmarks, opts);
    return secsBetween(t0, Clock::now());
}

bool
readBaseline(const std::string &path,
             std::map<std::string, std::pair<double, double>> &out,
             std::string &err)
{
    std::ifstream is(path);
    if (!is) {
        err = path + ": cannot open baseline file";
        return false;
    }
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string name;
        double live = 0.0, replay = 0.0;
        if (!(ls >> name >> live >> replay)) {
            err = path + ": malformed line '" + line + "'";
            return false;
        }
        out[name] = {live, replay};
    }
    return true;
}

std::string
jsonNum(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    return buf;
}

double
gmeanOf(const std::vector<double> &v)
{
    return geometricMean(v);
}

/**
 * The replay-sweep benchmark: record the workload set's traces once,
 * then time a multi-arm replay matrix. Every arm replays the same
 * (workload, phase) traces, so the decoded-trace cache turns S arms x
 * one decode-per-cell into one decode total per trace — the
 * timing.trace_decode_hits counter in the report is the evidence.
 */
int
runSweep(const Options &opt, const std::vector<std::string> &names)
{
    std::vector<sim::SimConfig> configs;
    for (const std::string &name : opt.sweepScenarios) {
        std::optional<sim::Scenario> sc = sim::findScenario(name);
        if (!sc)
            return usageError("unknown sweep scenario '" + name + "'");
        sim::SimConfig cfg = sc->config;
        cfg.warmupInsts = opt.sweepWarmup;
        cfg.measureInsts = opt.sweepMeasure;
        cfg.checkpoints = opt.sweepCheckpoints;
        configs.push_back(std::move(cfg));
    }
    if (configs.empty())
        return usageError("--sweep-scenarios list is empty");

    // Record pass (not timed): traces are architectural, so one
    // full-sizing baseline-core pass records for every arm; each sweep
    // cell then replays a short window out of its long trace
    // (record once, replay many).
    std::printf("sweep: recording %zu workload(s) x %u checkpoint(s) "
                "at %llu insts into %s\n",
                names.size(), opt.sweepCheckpoints,
                static_cast<unsigned long long>(opt.sweepRecordWarmup +
                                                opt.sweepRecordMeasure),
                opt.sweepTraceDir.c_str());
    std::fflush(stdout);
    sim::SimConfig reccfg = configs[0];
    reccfg.warmupInsts = opt.sweepRecordWarmup;
    reccfg.measureInsts = opt.sweepRecordMeasure;
    sim::MatrixOptions rec;
    rec.jobs = 0; // recording is off the clock: use every core.
    rec.progress = false;
    rec.traceIo.recordDir = opt.sweepTraceDir;
    sim::runMatrix({reccfg}, names, rec);

    // Timed replay rounds. Round 1 starts decode-cold (the cache is
    // cleared), later rounds replay fully warm — both temperatures
    // matter: cold is what a fresh sweep process pays, warm is the
    // steady state of a long-lived fleet worker.
    struct Round
    {
        double wallSecs = 0.0;
        u64 traceLoadMicros = 0;
        u64 decodeHits = 0;
        u64 decodeMisses = 0;
    };
    std::vector<Round> rounds;
    wl::traceCache().clear();
    for (unsigned r = 0; r < opt.sweepRounds; ++r) {
        wl::traceCache().resetStats();
        sim::MatrixOptions mo;
        mo.jobs = opt.sweepJobs;
        mo.progress = false;
        mo.traceIo.replayDir = opt.sweepTraceDir;
        auto t0 = Clock::now();
        auto rows = sim::runMatrix(configs, names, mo);
        Round round;
        round.wallSecs = secsBetween(t0, Clock::now());
        for (const auto &row : rows)
            for (const sim::RunResult &rr : row.byConfig) {
                round.traceLoadMicros += rr.timing.traceLoadMicros.value();
                round.decodeHits += rr.timing.traceDecodeHits.value();
                round.decodeMisses += rr.timing.traceDecodeMisses.value();
            }
        std::printf("sweep round %u (%s): wall %.3f s, trace load "
                    "%.3f s, decode %llu hit%s / %llu miss%s\n",
                    r + 1, r == 0 ? "cold" : "warm", round.wallSecs,
                    static_cast<double>(round.traceLoadMicros) / 1e6,
                    static_cast<unsigned long long>(round.decodeHits),
                    round.decodeHits == 1 ? "" : "s",
                    static_cast<unsigned long long>(round.decodeMisses),
                    round.decodeMisses == 1 ? "" : "es");
        std::fflush(stdout);
        rounds.push_back(round);
    }
    double best = rounds[0].wallSecs;
    for (const Round &r : rounds)
        best = std::min(best, r.wallSecs);
    if (opt.sweepBaselineWall > 0.0)
        std::printf("sweep best %.3f s vs baseline %.3f s: %.2fx\n", best,
                    opt.sweepBaselineWall, opt.sweepBaselineWall / best);

    if (!opt.perfJsonPath.empty()) {
        std::ostringstream os;
        os << "{\n";
        os << "  \"suite\": \"rsep replay-sweep trace data path\",\n";
        os << "  \"scenarios\": [";
        for (size_t i = 0; i < opt.sweepScenarios.size(); ++i)
            os << (i ? ", " : "") << "\"" << opt.sweepScenarios[i] << "\"";
        os << "],\n";
        os << "  \"workloads\": [";
        for (size_t i = 0; i < names.size(); ++i)
            os << (i ? ", " : "") << "\"" << names[i] << "\"";
        os << "],\n";
        os << "  \"warmup_insts\": " << opt.sweepWarmup << ",\n";
        os << "  \"measure_insts\": " << opt.sweepMeasure << ",\n";
        os << "  \"checkpoints\": " << opt.sweepCheckpoints << ",\n";
        os << "  \"jobs\": " << opt.sweepJobs << ",\n";
        os << "  \"rounds\": [\n";
        for (size_t i = 0; i < rounds.size(); ++i) {
            const Round &r = rounds[i];
            os << "    {\"round\": " << i + 1 << ", \"temperature\": \""
               << (i == 0 ? "cold" : "warm")
               << "\", \"wall_s\": " << jsonNum(r.wallSecs)
               << ", \"trace_load_s\": "
               << jsonNum(static_cast<double>(r.traceLoadMicros) / 1e6)
               << ", \"trace_decode_hits\": " << r.decodeHits
               << ", \"trace_decode_misses\": " << r.decodeMisses << "}"
               << (i + 1 < rounds.size() ? "," : "") << "\n";
        }
        os << "  ],\n";
        os << "  \"best_wall_s\": " << jsonNum(best);
        if (opt.sweepBaselineWall > 0.0)
            os << ",\n  \"baseline_wall_s\": "
               << jsonNum(opt.sweepBaselineWall)
               << ",\n  \"baseline_note\": \"same sweep, paired "
                  "alternating rounds, older build's driver binary on "
                  "this host\",\n  \"speedup_vs_baseline\": "
               << jsonNum(opt.sweepBaselineWall / best);
        os << "\n}\n";
        std::ofstream f(opt.perfJsonPath);
        f << os.str();
        if (!f)
            return usageError("cannot write " + opt.perfJsonPath);
        std::fprintf(stderr, "[rsep_bench] wrote %s\n",
                     opt.perfJsonPath.c_str());
    }
    return 0;
}

int
runBench(const Options &opt)
{
    std::optional<sim::Scenario> sc = sim::findScenario(opt.scenario);
    if (!sc)
        return usageError("unknown scenario '" + opt.scenario + "'");
    sim::SimConfig cfg = sc->config;

    std::map<std::string, std::pair<double, double>> baseline;
    if (!opt.baselinePath.empty()) {
        std::string err;
        if (!readBaseline(opt.baselinePath, baseline, err))
            return usageError(err);
    }

    std::map<std::string, std::string> archetypes = archetypeMap();
    std::vector<std::string> names = opt.workloads;
    if (!opt.workloadSet.empty()) {
        if (!names.empty())
            return usageError(
                "--workload and --workload-set are exclusive");
        std::string err;
        if (!resolveWorkloadSet(opt.workloadSet, archetypes, names, err))
            return usageError(err);
    }
    if (opt.sweep) {
        if (names.empty()) {
            // The branchy set is the sweep default: per-cell trace
            // volume is highest where branch events are densest.
            std::string err;
            if (!resolveWorkloadSet("branchy", archetypes, names, err))
                return usageError(err);
        }
        return runSweep(opt, names);
    }
    if (names.empty())
        names = wl::suiteNames();

    // ---- single-thread per-workload timing ----
    std::vector<WorkloadPerf> perfs;
    for (const std::string &name : names) {
        WorkloadPerf perf =
            timeWorkload(cfg, name, opt.warmup, opt.measure);
        auto at = archetypes.find(name);
        perf.archetype = at != archetypes.end() ? at->second : "?";
        auto bl = baseline.find(name);
        if (bl != baseline.end())
            perf.baselineReplayMips = bl->second.second;
        std::printf("%-12s %-14s live %7.3f Minst/s  replay %7.3f "
                    "Minst/s (%.2fx)%s\n",
                    perf.workload.c_str(), perf.archetype.c_str(),
                    perf.liveMips, perf.replayMips,
                    perf.liveMips > 0.0 ? perf.replayMips / perf.liveMips
                                        : 0.0,
                    perf.baselineReplayMips > 0.0
                        ? ("  [" +
                           jsonNum(perf.replayMips /
                                   perf.baselineReplayMips) +
                           "x vs baseline]")
                              .c_str()
                        : "");
        std::fflush(stdout);
        perfs.push_back(perf);
    }

    std::vector<double> live, replay, vs_baseline;
    for (const WorkloadPerf &p : perfs) {
        live.push_back(p.liveMips);
        replay.push_back(p.replayMips);
        if (p.baselineReplayMips > 0.0)
            vs_baseline.push_back(p.replayMips / p.baselineReplayMips);
    }
    double gm_live = gmeanOf(live);
    double gm_replay = gmeanOf(replay);
    double gm_speedup = gmeanOf(vs_baseline);
    std::printf("gmean        live %7.3f Minst/s  replay %7.3f Minst/s "
                "(%.2fx)%s\n",
                gm_live, gm_replay,
                gm_live > 0.0 ? gm_replay / gm_live : 0.0,
                vs_baseline.empty()
                    ? ""
                    : ("  [" + jsonNum(gm_speedup) + "x vs baseline]")
                          .c_str());

    // ---- sampling-overhead study ----
    SamplingOverhead so;
    if (opt.sampleEvery > 0) {
        // One branchy cell: densest per-cycle event rate, so the
        // per-iteration sampler null-check is least hidden by stalls.
        so = timeSamplingOverhead(cfg, "gobmk", opt.warmup, opt.measure,
                                  opt.sampleEvery);
        std::printf("sampling     %-12s every %llu cycles: off %.3f s, "
                    "on %.3f s, overhead %.2f%% (%zu rows, %.0f "
                    "samples/s)\n",
                    so.workload.c_str(),
                    static_cast<unsigned long long>(so.period), so.offSecs,
                    so.onSecs, so.overheadPct(),
                    static_cast<size_t>(so.rows), so.samplesPerSec());
        std::fflush(stdout);
    }

    // ---- thread-scaling study ----
    std::vector<ScalingPoint> scaling;
    if (opt.scaling) {
        sim::SimConfig scfg = cfg;
        scfg.warmupInsts = opt.scalingMeasure / 4;
        scfg.measureInsts = opt.scalingMeasure;
        scfg.checkpoints = 4; // several cells per run window.
        for (sim::StealMode steal :
             {sim::StealMode::Cell, sim::StealMode::Window}) {
            const char *steal_name =
                steal == sim::StealMode::Cell ? "cell" : "window";
            for (unsigned jobs : opt.threads) {
                double wall = timeMatrix(scfg, names, jobs, steal);
                scaling.push_back({steal_name, jobs, wall});
                std::printf("scaling steal=%-6s jobs=%-3u wall %.3f s\n",
                            steal_name, jobs, wall);
                std::fflush(stdout);
            }
        }
    }

    // ---- reports ----
    if (!opt.writeBaselinePath.empty()) {
        std::ofstream os(opt.writeBaselinePath);
        os << "# rsep_bench baseline: workload live-Minst/s "
              "replay-Minst/s\n";
        for (const WorkloadPerf &p : perfs)
            os << p.workload << " " << jsonNum(p.liveMips) << " "
               << jsonNum(p.replayMips) << "\n";
        if (!os)
            return usageError("cannot write " + opt.writeBaselinePath);
        std::fprintf(stderr, "[rsep_bench] wrote %s\n",
                     opt.writeBaselinePath.c_str());
    }

    if (!opt.perfJsonPath.empty()) {
        std::ostringstream os;
        os << "{\n";
        os << "  \"suite\": \"rsep cycle-loop throughput\",\n";
        os << "  \"scenario\": \"" << opt.scenario << "\",\n";
        if (!opt.workloadSet.empty())
            os << "  \"workload_set\": \"" << opt.workloadSet << "\",\n";
        os << "  \"warmup_insts\": " << opt.warmup << ",\n";
        os << "  \"measure_insts\": " << opt.measure << ",\n";
        os << "  \"host_threads\": "
           << std::thread::hardware_concurrency() << ",\n";
        os << "  \"host_threads_note\": \"runMatrix scaling speedups "
              "are bounded by host_threads; on a 1-core host the "
              "thread-scaling curve is expected flat\",\n";
        os << "  \"single_thread\": [\n";
        for (size_t i = 0; i < perfs.size(); ++i) {
            const WorkloadPerf &p = perfs[i];
            os << "    {\"workload\": \"" << p.workload
               << "\", \"archetype\": \"" << p.archetype
               << "\", \"live_minst_per_s\": " << jsonNum(p.liveMips)
               << ", \"replay_minst_per_s\": " << jsonNum(p.replayMips)
               << ", \"replay_vs_live\": "
               << jsonNum(p.liveMips > 0.0 ? p.replayMips / p.liveMips
                                           : 0.0);
            if (p.baselineReplayMips > 0.0)
                os << ", \"baseline_replay_minst_per_s\": "
                   << jsonNum(p.baselineReplayMips)
                   << ", \"speedup_vs_baseline\": "
                   << jsonNum(p.replayMips / p.baselineReplayMips);
            os << "}" << (i + 1 < perfs.size() ? "," : "") << "\n";
        }
        os << "  ],\n";

        // Per-archetype gmeans.
        std::map<std::string, std::vector<const WorkloadPerf *>> groups;
        for (const WorkloadPerf &p : perfs)
            groups[p.archetype].push_back(&p);
        os << "  \"archetypes\": [\n";
        size_t gi = 0;
        for (const auto &[arch, members] : groups) {
            std::vector<double> l, r, s;
            for (const WorkloadPerf *p : members) {
                l.push_back(p->liveMips);
                r.push_back(p->replayMips);
                if (p->baselineReplayMips > 0.0)
                    s.push_back(p->replayMips / p->baselineReplayMips);
            }
            os << "    {\"archetype\": \"" << arch
               << "\", \"workloads\": " << members.size()
               << ", \"gmean_live_minst_per_s\": " << jsonNum(gmeanOf(l))
               << ", \"gmean_replay_minst_per_s\": "
               << jsonNum(gmeanOf(r));
            if (!s.empty())
                os << ", \"gmean_speedup_vs_baseline\": "
                   << jsonNum(gmeanOf(s));
            os << "}" << (++gi < groups.size() ? "," : "") << "\n";
        }
        os << "  ],\n";

        os << "  \"gmean\": {\"live_minst_per_s\": " << jsonNum(gm_live)
           << ", \"replay_minst_per_s\": " << jsonNum(gm_replay)
           << ", \"replay_vs_live\": "
           << jsonNum(gm_live > 0.0 ? gm_replay / gm_live : 0.0);
        if (!vs_baseline.empty())
            os << ", \"speedup_vs_baseline\": " << jsonNum(gm_speedup);
        os << "},\n";

        if (opt.sampleEvery > 0)
            os << "  \"sampling\": {\"workload\": \"" << so.workload
               << "\", \"sample_every_cycles\": " << so.period
               << ", \"off_wall_s\": " << jsonNum(so.offSecs)
               << ", \"on_wall_s\": " << jsonNum(so.onSecs)
               << ", \"overhead_pct\": " << jsonNum(so.overheadPct())
               << ", \"rows\": " << so.rows
               << ", \"samples_per_sec\": " << jsonNum(so.samplesPerSec())
               << ", \"acceptance\": \"overhead_pct < 3\"},\n";

        os << "  \"scaling\": [\n";
        double base_cell = 0.0, base_window = 0.0;
        for (const ScalingPoint &pt : scaling)
            if (pt.jobs == 1) {
                (std::strcmp(pt.steal, "cell") == 0 ? base_cell
                                                    : base_window) =
                    pt.wallSecs;
            }
        for (size_t i = 0; i < scaling.size(); ++i) {
            const ScalingPoint &pt = scaling[i];
            double base = std::strcmp(pt.steal, "cell") == 0
                ? base_cell
                : base_window;
            os << "    {\"steal\": \"" << pt.steal
               << "\", \"jobs\": " << pt.jobs
               << ", \"wall_s\": " << jsonNum(pt.wallSecs);
            if (base > 0.0)
                os << ", \"speedup_vs_1_thread\": "
                   << jsonNum(base / pt.wallSecs);
            os << "}" << (i + 1 < scaling.size() ? "," : "") << "\n";
        }
        os << "  ]\n";
        os << "}\n";

        std::ofstream f(opt.perfJsonPath);
        f << os.str();
        if (!f)
            return usageError("cannot write " + opt.perfJsonPath);
        std::fprintf(stderr, "[rsep_bench] wrote %s\n",
                     opt.perfJsonPath.c_str());
    }
    return 0;
}

/** Split a NAME[,NAME...] list. */
std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string item;
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto value = [&](const char *flag, std::string &v) -> int {
            size_t n = std::strlen(flag);
            if (a.compare(0, n, flag) != 0)
                return 0;
            if (a.size() == n) {
                if (i + 1 >= argc)
                    return -1;
                v = argv[++i];
                return 1;
            }
            if (a[n] != '=')
                return 0;
            v = a.substr(n + 1);
            return 1;
        };
        auto number = [&](const std::string &v, u64 &out) {
            char *end = nullptr;
            out = std::strtoull(v.c_str(), &end, 10);
            return end && *end == '\0' && !v.empty();
        };

        if (a == "--help" || a == "-h") {
            printHelp();
            return 0;
        }
        if (a == "--no-scaling") {
            opt.scaling = false;
            continue;
        }
        if (a == "--sweep") {
            opt.sweep = true;
            continue;
        }
        std::string v;
        int hit;
        u64 n = 0;
        if ((hit = value("--perf-json", v)) != 0) {
            if (hit < 0)
                return usageError("--perf-json requires a path");
            opt.perfJsonPath = v;
        } else if ((hit = value("--baseline", v)) != 0) {
            if (hit < 0)
                return usageError("--baseline requires a path");
            opt.baselinePath = v;
        } else if ((hit = value("--write-baseline", v)) != 0) {
            if (hit < 0)
                return usageError("--write-baseline requires a path");
            opt.writeBaselinePath = v;
        } else if ((hit = value("--scenario", v)) != 0) {
            if (hit < 0)
                return usageError("--scenario requires a name");
            opt.scenario = v;
        } else if ((hit = value("--workload-set", v)) != 0) {
            if (hit < 0)
                return usageError("--workload-set requires a name");
            opt.workloadSet = v;
        } else if ((hit = value("--workload", v)) != 0) {
            if (hit < 0)
                return usageError("--workload requires a name");
            for (const std::string &name : splitCommas(v))
                opt.workloads.push_back(name);
        } else if ((hit = value("--warmup", v)) != 0) {
            if (hit < 0 || !number(v, opt.warmup))
                return usageError("--warmup requires a count");
        } else if ((hit = value("--measure", v)) != 0) {
            if (hit < 0 || !number(v, opt.measure))
                return usageError("--measure requires a count");
        } else if ((hit = value("--scaling-measure", v)) != 0) {
            if (hit < 0 || !number(v, opt.scalingMeasure))
                return usageError("--scaling-measure requires a count");
        } else if ((hit = value("--sample-every", v)) != 0) {
            if (hit < 0 || !number(v, opt.sampleEvery))
                return usageError("--sample-every requires a cycle count "
                                  "(0 skips the sampling study)");
        } else if ((hit = value("--sweep-scenarios", v)) != 0) {
            if (hit < 0)
                return usageError("--sweep-scenarios requires a list");
            opt.sweepScenarios = splitCommas(v);
        } else if ((hit = value("--sweep-trace-dir", v)) != 0) {
            if (hit < 0 || v.empty())
                return usageError("--sweep-trace-dir requires a path");
            opt.sweepTraceDir = v;
        } else if ((hit = value("--sweep-rounds", v)) != 0) {
            if (hit < 0 || !number(v, n) || n == 0 || n > 100)
                return usageError("--sweep-rounds requires a count "
                                  "(1..100)");
            opt.sweepRounds = static_cast<unsigned>(n);
        } else if ((hit = value("--sweep-baseline-wall", v)) != 0) {
            if (hit < 0)
                return usageError("--sweep-baseline-wall requires "
                                  "seconds");
            char *end = nullptr;
            opt.sweepBaselineWall = std::strtod(v.c_str(), &end);
            if (!end || *end != '\0' || v.empty() ||
                opt.sweepBaselineWall <= 0.0)
                return usageError("invalid --sweep-baseline-wall '" + v +
                                  "'");
        } else if ((hit = value("--threads", v)) != 0) {
            if (hit < 0)
                return usageError("--threads requires a list");
            opt.threads.clear();
            for (const std::string &t : splitCommas(v)) {
                if (!number(t, n) || n == 0 || n > sim::maxJobs)
                    return usageError("bad thread count '" + t + "'");
                opt.threads.push_back(static_cast<unsigned>(n));
            }
            if (opt.threads.empty())
                return usageError("--threads list is empty");
        } else if (!a.empty() && a[0] == '-') {
            return usageError("unknown option '" + a + "'");
        } else {
            return usageError("unexpected argument '" + a + "'");
        }
    }
    return runBench(opt);
}

/**
 * @file
 * rsep_merge — reassemble sharded stat dumps into the unsharded table.
 *
 * Ingests the per-shard CSV/JSON dumps that `--shard i/N` driver
 * processes exported, validates that they tile the matrix (disjoint
 * rows, complete benchmark x scenario rectangle), and emits the merged
 * canonical dump plus the paper's figure summaries (per-benchmark
 * speedup bars and gmean rows). Merging the shards of a matrix yields
 * a dump byte-identical to the one an unsharded run writes.
 *
 *     rsep_merge --csv merged.csv shard0.csv shard1.csv shard2.csv
 *     rsep_merge --summary - --baseline baseline shard*.json
 *
 * `--gc` switches to result-cache garbage collection: drop `--cache-dir`
 * records whose config hash no longer appears in the given scenario
 * set, clear quarantine debris, and optionally LRU-cap the cache size:
 *
 *     rsep_merge --gc --cache-dir cc --scenario-file sweep.scn
 *     rsep_merge --gc --cache-dir cc --scenario rsep,baseline \
 *                --max-bytes 500000000
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/env.hh"
#include "sim/cache_gc.hh"
#include "sim/scenario.hh"
#include "sim/stat_merge.hh"
#include "wl/suite.hh"

namespace
{

void
printHelp()
{
    std::printf(
        "usage: rsep_merge [options] DUMP [DUMP ...]\n"
        "Merge per-shard stat dumps (CSV or JSON, from the drivers'\n"
        "--csv/--json --shard runs) into one canonical table.\n"
        "\noptions:\n"
        "  --csv PATH       write the merged table as CSV ('-' = stdout)\n"
        "  --json PATH      write the merged table as JSON ('-' = stdout)\n"
        "  --summary PATH   write the figure summary: per-benchmark\n"
        "                   speedup bars + gmean rows ('-' = stdout)\n"
        "  --baseline NAME  baseline scenario for the summary speedups\n"
        "                   (default: 'baseline' when present, else the\n"
        "                   lexicographically first scenario)\n"
        "  --expect-benchmarks NAME[,NAME...]\n"
        "                   the benchmark set the matrix must cover\n"
        "                   (repeatable; 'suite' = the built-in 29-bench\n"
        "                   paper suite). Without it, a benchmark or arm\n"
        "                   missing from EVERY input is undetectable.\n"
        "  --allow-partial  tolerate an incomplete benchmark x scenario\n"
        "                   matrix (missing cells warn instead of fail)\n"
        "  --help, -h       show this help\n"
        "\nWith no output option, the merged CSV goes to stdout.\n"
        "Validation: duplicate (benchmark, scenario, config-hash) rows\n"
        "across inputs are always an error (shards must be disjoint).\n"
        "\ncache garbage collection (no DUMP inputs in this mode):\n"
        "  --gc             collect a result cache instead of merging\n"
        "  --cache-dir PATH the cache directory to collect (required)\n"
        "  --scenario NAME[,NAME...]\n"
        "                   registered scenarios whose records stay live\n"
        "                   (repeatable; hashed under both the library\n"
        "                   and the bench-harness run sizing)\n"
        "  --scenario-file PATH\n"
        "                   scenario file whose arms' records stay live\n"
        "                   (repeatable)\n"
        "  --seed N         hash the live scenarios under this [sim]\n"
        "                   seed too (mirror of the drivers' --seed)\n"
        "  --max-bytes N    after dropping stale records, evict the\n"
        "                   oldest surviving records (LRU by mtime)\n"
        "                   until the cache fits N bytes\n"
        "  --dry-run        report what would be removed; remove nothing\n"
        "\nWithout --scenario/--scenario-file every record is considered\n"
        "live (only quarantine debris and --max-bytes apply). Records\n"
        "are matched by the <config-hash>-p<phase>-s<seed>.cell naming;\n"
        "other files are never touched.\n");
}

int
usageError(const std::string &msg)
{
    std::fprintf(stderr, "rsep_merge: %s (try --help)\n", msg.c_str());
    return 2;
}

/** Write through a sink to @p path, with '-' meaning stdout. */
bool
writeOut(const std::string &path, const rsep::sim::StatSink &sink,
         const std::vector<rsep::sim::StatRow> &rows)
{
    if (path == "-") {
        sink.write(std::cout, rows);
        return static_cast<bool>(std::cout);
    }
    std::string err;
    if (!rsep::sim::writeStatsFile(path, sink, rows, &err)) {
        std::fprintf(stderr, "rsep_merge: %s\n", err.c_str());
        return false;
    }
    std::fprintf(stderr, "[merge] wrote %s\n", path.c_str());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rsep::sim;

    std::string csv_path, json_path, summary_path, baseline;
    bool allow_partial = false;
    std::vector<std::string> inputs;
    std::vector<std::string> expect_benchmarks;

    bool gc = false, gc_dry_run = false, gc_seed_overridden = false;
    rsep::u64 gc_seed = 0, gc_max_bytes = 0;
    std::string gc_cache_dir;
    std::vector<std::string> gc_scenarios, gc_scenario_files;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto valueOf = [&](const char *flag, std::string &value) -> int {
            size_t n = std::strlen(flag);
            if (a.compare(0, n, flag) != 0)
                return 0;
            if (a.size() == n) {
                if (i + 1 >= argc)
                    return -1;
                value = argv[++i];
                return 1;
            }
            if (a[n] != '=')
                return 0;
            value = a.substr(n + 1);
            return 1;
        };

        if (a == "--help" || a == "-h") {
            printHelp();
            return 0;
        }
        if (a == "--allow-partial") {
            allow_partial = true;
            continue;
        }
        if (a == "--gc") {
            gc = true;
            continue;
        }
        if (a == "--dry-run") {
            gc_dry_run = true;
            continue;
        }
        int hit;
        if ((hit = valueOf("--cache-dir", gc_cache_dir)) != 0) {
            if (hit < 0)
                return usageError("--cache-dir requires a path");
            continue;
        }
        std::string value;
        if ((hit = valueOf("--scenario-file", value)) != 0) {
            if (hit < 0)
                return usageError("--scenario-file requires a path");
            gc_scenario_files.push_back(value);
            continue;
        }
        if ((hit = valueOf("--scenario", value)) != 0) {
            if (hit < 0)
                return usageError("--scenario requires NAME[,NAME...]");
            std::istringstream is(value);
            std::string item;
            while (std::getline(is, item, ','))
                if (!item.empty())
                    gc_scenarios.push_back(item);
            continue;
        }
        if ((hit = valueOf("--seed", value)) != 0) {
            if (hit < 0)
                return usageError("--seed requires a value");
            if (!rsep::parseU64(value, gc_seed))
                return usageError("invalid --seed '" + value + "'");
            gc_seed_overridden = true;
            continue;
        }
        if ((hit = valueOf("--max-bytes", value)) != 0) {
            if (hit < 0)
                return usageError("--max-bytes requires a value");
            if (!rsep::parseU64(value, gc_max_bytes) || gc_max_bytes == 0)
                return usageError("invalid --max-bytes '" + value +
                                  "' (expected a positive byte count)");
            continue;
        }
        if ((hit = valueOf("--csv", csv_path)) != 0) {
            if (hit < 0)
                return usageError("--csv requires a path");
            continue;
        }
        if ((hit = valueOf("--json", json_path)) != 0) {
            if (hit < 0)
                return usageError("--json requires a path");
            continue;
        }
        if ((hit = valueOf("--summary", summary_path)) != 0) {
            if (hit < 0)
                return usageError("--summary requires a path");
            continue;
        }
        if ((hit = valueOf("--baseline", baseline)) != 0) {
            if (hit < 0)
                return usageError("--baseline requires a scenario name");
            continue;
        }
        std::string expect;
        if ((hit = valueOf("--expect-benchmarks", expect)) != 0) {
            if (hit < 0)
                return usageError(
                    "--expect-benchmarks requires NAME[,NAME...]");
            std::istringstream is(expect);
            std::string item;
            while (std::getline(is, item, ',')) {
                if (item == "suite")
                    for (const std::string &b : rsep::wl::suiteNames())
                        expect_benchmarks.push_back(b);
                else if (!item.empty())
                    expect_benchmarks.push_back(item);
            }
            continue;
        }
        if (!a.empty() && a[0] == '-' && a != "-")
            return usageError("unknown option '" + a + "'");
        inputs.push_back(a);
    }

    if (!gc && (!gc_cache_dir.empty() || !gc_scenarios.empty() ||
                !gc_scenario_files.empty() || gc_max_bytes > 0 ||
                gc_dry_run || gc_seed_overridden))
        return usageError("--cache-dir/--scenario/--scenario-file/--seed/"
                          "--max-bytes/--dry-run require --gc");

    if (gc) {
        if (!inputs.empty())
            return usageError("unexpected DUMP input '" + inputs.front() +
                              "' in --gc mode");
        if (gc_cache_dir.empty())
            return usageError("--gc requires --cache-dir");

        std::set<std::string> live;
        auto addConfig = [&](SimConfig cfg) {
            // Registry arms run under the bench-harness sizing too, and
            // a --seed sweep runs beside the default-seed records: keep
            // every variant's hash alive (--seed is additive, as the
            // help promises).
            std::vector<SimConfig> variants{cfg};
            if (gc_seed_overridden) {
                SimConfig seeded = cfg;
                seeded.seed = gc_seed;
                variants.push_back(seeded);
            }
            for (SimConfig &v : variants) {
                live.insert(configHash(v));
                rsep::bench::applyBenchDefaults(v);
                live.insert(configHash(v));
            }
        };
        for (const std::string &name : gc_scenarios) {
            auto sc = findScenario(name);
            if (!sc)
                return usageError("unknown scenario '" + name +
                                  "' (see the drivers' --list-scenarios)");
            addConfig(sc->config);
        }
        for (const std::string &path : gc_scenario_files) {
            ScenarioParse parsed = parseScenarioFile(path);
            if (!parsed.ok()) {
                std::fprintf(stderr, "rsep_merge: %s\n",
                             parsed.error.c_str());
                return 1;
            }
            for (const Scenario &sc : parsed.scenarios)
                addConfig(sc.config);
        }
        if (live.empty() && gc_max_bytes == 0)
            std::fprintf(stderr,
                         "rsep_merge: note: no scenario set and no "
                         "--max-bytes; only quarantine debris will be "
                         "collected\n");

        GcOptions opts;
        opts.cacheDir = gc_cache_dir;
        opts.liveHashes = std::move(live);
        opts.maxBytes = gc_max_bytes;
        opts.dryRun = gc_dry_run;
        GcReport report;
        std::string err = runCacheGc(opts, report);
        if (!err.empty()) {
            std::fprintf(stderr, "rsep_merge: %s\n", err.c_str());
            return 1;
        }
        std::fprintf(
            stderr,
            "[gc]%s %llu record(s) scanned (%llu bytes): %llu stale + "
            "%llu corrupt + %llu LRU removed (%llu bytes); %llu "
            "record(s) kept (%llu bytes)\n",
            opts.dryRun ? " (dry run)" : "",
            static_cast<unsigned long long>(report.scannedFiles),
            static_cast<unsigned long long>(report.scannedBytes),
            static_cast<unsigned long long>(report.staleRemoved),
            static_cast<unsigned long long>(report.corruptRemoved),
            static_cast<unsigned long long>(report.lruRemoved),
            static_cast<unsigned long long>(report.removedBytes),
            static_cast<unsigned long long>(report.keptFiles),
            static_cast<unsigned long long>(report.keptBytes));
        return 0;
    }

    if (inputs.empty())
        return usageError("no input dumps given");

    std::vector<std::vector<StatRow>> parsed;
    size_t total_rows = 0;
    for (const std::string &path : inputs) {
        DumpParse p = parseDumpFile(path);
        if (!p.ok()) {
            std::fprintf(stderr, "rsep_merge: %s\n", p.error.c_str());
            return 1;
        }
        total_rows += p.rows.size();
        parsed.push_back(std::move(p.rows));
    }

    std::vector<StatRow> merged;
    std::string err = mergeStatRows(parsed, inputs, merged);
    if (!err.empty()) {
        std::fprintf(stderr, "rsep_merge: %s\n", err.c_str());
        return 1;
    }

    // Unknown timing.* keys merge fine (counters are opaque here) but
    // mean the dump came from a build with a different timing schema —
    // say so instead of passing them through silently.
    for (const std::string &name : unknownTimingCounters(merged))
        std::fprintf(stderr,
                     "rsep_merge: warning: unknown timing counter '%s' "
                     "(produced by a build with a different RunTiming "
                     "schema; merged as-is)\n",
                     name.c_str());

    std::string holes = checkCompleteness(merged, expect_benchmarks);
    if (!holes.empty()) {
        std::fprintf(stderr, "rsep_merge: %s%s\n",
                     allow_partial ? "warning: " : "", holes.c_str());
        if (!allow_partial)
            return 1;
    }

    // Heuristic guard for the forgotten-shard case the rectangle check
    // cannot see: without --expect-benchmarks, a benchmark missing
    // from EVERY input leaves no hole. If the merged set is a strict
    // subset of the built-in paper suite, say so.
    if (expect_benchmarks.empty() && holes.empty()) {
        std::set<std::string> present;
        for (const StatRow &r : merged)
            present.insert(r.benchmark);
        std::vector<std::string> suite = rsep::wl::suiteNames();
        std::set<std::string> suite_set(suite.begin(), suite.end());
        bool all_from_suite = true;
        for (const std::string &b : present)
            all_from_suite = all_from_suite && suite_set.count(b);
        if (all_from_suite && !present.empty() &&
            present.size() < suite_set.size())
            std::fprintf(stderr,
                         "rsep_merge: note: rows cover %zu of the %zu "
                         "paper-suite benchmarks; if this sweep meant "
                         "to run the full suite, a shard dump is "
                         "missing (pass --expect-benchmarks suite to "
                         "enforce)\n",
                         present.size(), suite_set.size());
    }

    std::fprintf(stderr,
                 "[merge] %zu input dump(s), %zu rows, %s matrix\n",
                 inputs.size(), total_rows,
                 holes.empty() ? "complete" : "PARTIAL");

    bool ok = true;
    if (!csv_path.empty())
        ok = writeOut(csv_path, CsvStatSink{}, merged) && ok;
    if (!json_path.empty())
        ok = writeOut(json_path, JsonStatSink{}, merged) && ok;
    if (!summary_path.empty()) {
        std::string serr;
        if (summary_path == "-") {
            if (!writeFigureSummary(std::cout, merged, baseline, &serr)) {
                std::fprintf(stderr, "rsep_merge: %s\n", serr.c_str());
                ok = false;
            }
        } else {
            std::ofstream os(summary_path);
            if (!os ||
                !writeFigureSummary(os, merged, baseline, &serr) ||
                !(os.flush())) {
                std::fprintf(stderr, "rsep_merge: %s\n",
                             serr.empty()
                                 ? (summary_path + ": write failed").c_str()
                                 : serr.c_str());
                ok = false;
            } else {
                std::fprintf(stderr, "[merge] wrote %s\n",
                             summary_path.c_str());
            }
        }
    }
    if (csv_path.empty() && json_path.empty() && summary_path.empty())
        ok = writeOut("-", CsvStatSink{}, merged) && ok;
    return ok ? 0 : 1;
}

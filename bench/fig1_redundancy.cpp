/**
 * @file
 * Reproduces Fig. 1: the ratio of committed instructions whose result
 * is zero (split loads / others, zero idioms excluded) and whose result
 * is already present in a live physical register, per benchmark.
 * Also prints the commit-group producer statistics backing the
 * Section IV-D comparator-sufficiency claim.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace rsep;
    using core::PipelineStats;

    bench::HarnessSpec spec;
    spec.name = "fig1_redundancy";
    spec.description =
        "Reproduces Fig. 1: result redundancy at commit (zero results "
        "and results\nalready live in the PRF), plus the commit-group "
        "producer histogram.";
    // The probe rides the baseline core; equality prediction is on
    // solely to collect the commit-group histogram.
    spec.defaultScenarios = {"fig1-redundancy"};
    spec.report = [](const bench::HarnessResult &r) {
        std::printf("=== Fig. 1: result redundancy at commit ===\n");
        std::printf("%-12s %10s %10s %12s %12s %10s %10s\n", "benchmark",
                    "zero-ld%", "zero-oth%", "inPRF-ld%", "inPRF-oth%",
                    "grp>=6%", "grp=8%");

        for (const auto &mrow : r.rows) {
            const std::string &bench = mrow.benchmark;
            const sim::RunResult &rr = mrow.byConfig[0];

            double insts = static_cast<double>(
                rr.sum(&PipelineStats::committedInsts));
            auto pct = [&](StatCounter PipelineStats::* m) {
                return 100.0 * static_cast<double>(rr.sum(m)) / insts;
            };

            // Commit-group eligibility histogram across phases.
            u64 cycles = 0, ge6 = 0, eq8 = 0;
            for (const auto &ph : rr.phases) {
                const auto &h = ph.stats.commitGroupProducers;
                cycles += h.samples();
                for (size_t b = 6; b < h.buckets(); ++b)
                    ge6 += h.bucket(b);
                eq8 += h.bucket(8);
            }
            double ge6pct = cycles ? 100.0 * ge6 / cycles : 0.0;
            double eq8pct = cycles ? 100.0 * eq8 / cycles : 0.0;

            std::printf(
                "%-12s %10.2f %10.2f %12.2f %12.2f %10.2f %10.2f\n",
                bench.c_str(), pct(&PipelineStats::fig1ZeroLoad),
                pct(&PipelineStats::fig1ZeroOther),
                pct(&PipelineStats::fig1InPrfLoad),
                pct(&PipelineStats::fig1InPrfOther), ge6pct, eq8pct);
        }
        std::printf(
            "\npaper shape: most benchmarks >=5%% redundant results; "
            "zeusmp/cactusADM ~20%% zero producers; lbm/gamess retire "
            "wide eligible groups.\n");
    };
    return bench::runHarness(argc, argv, spec);
}

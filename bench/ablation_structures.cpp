/**
 * @file
 * Ablations from Sections IV and VI-A on the paper's highlight
 * benchmarks:
 *  - FIFO history depth sweep (32/128/256/1024) + the DDT alternative
 *    (Section VI-A2: 128 entries suffice; FIFO beats the 16KB DDT);
 *  - ISRB size sweep (Section VI-A3: 24 entries are enough);
 *  - hash width sweep (Section IV-A: 14-bit fold; power-of-two widths
 *    collide more, hurting training via false pairs);
 *  - distance predictor size (42.6KB ideal vs 10.1KB realistic).
 *
 * Every arm is a registered scenario plus dotted-key overrides, so the
 * sweeps exercise exactly the path scenario files use.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "common/logging.hh"

namespace
{

using namespace rsep;

/** A sweep arm: the `rsep` scenario + overrides, bench-default sized. */
sim::Scenario
rsepArm(const std::string &label,
        const std::vector<std::pair<std::string, std::string>> &overrides)
{
    sim::Scenario sc = *sim::findScenario("rsep");
    sc.name = label;
    sc.config.label = label;
    for (const auto &[key, value] : overrides) {
        std::string err;
        if (!sim::applyScenarioKey(sc.config, key, value, &err))
            rsep_fatal("%s", err.c_str());
    }
    bench::applyBenchDefaults(sc.config);
    return sc;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rsep;

    bench::HarnessSpec spec;
    spec.name = "ablation_structures";
    spec.description =
        "Structure ablations (Sections IV, VI-A) on the paper's "
        "highlight benchmarks:\nFIFO depth vs DDT, ISRB size, hash "
        "width, distance predictor size.";
    spec.custom = [&spec](const bench::DriverContext &ctx) {
        if (ctx.scenariosOverridden)
            return bench::runScenarioMatrix(spec, ctx, ctx.scenarios);

        sim::Scenario base = *sim::findScenario("baseline");
        bench::applyBenchDefaults(base.config);

        // Accumulated across sweeps for --csv/--json/--stats. The
        // shared baseline column recurs in every sweep; keep one copy
        // so (benchmark, scenario, hash) stays a unique export key.
        std::vector<sim::SimConfig> all_configs;
        std::vector<sim::MatrixRow> all_rows;
        std::vector<std::string> seen_keys;

        auto sweep = [&](const std::string &title,
                         const std::vector<sim::Scenario> &arms) {
            std::vector<sim::SimConfig> configs;
            configs.push_back(base.config);
            for (const auto &arm : arms)
                configs.push_back(arm.config);
            std::cout << "\n=== " << title << " ===\n";
            auto rows = sim::runMatrix(
                configs, bench::highlightBenchmarks(), ctx.matrix);
            sim::printSpeedupTable(std::cout, rows, configs);

            for (size_t b = 0; b < rows.size(); ++b)
                if (b >= all_rows.size())
                    all_rows.push_back({rows[b].benchmark, {}});
            for (size_t c = 0; c < configs.size(); ++c) {
                // Arms may share a config (e.g. fifo-1024 == the rsep
                // base) under different names, so key on label + hash.
                std::string key =
                    configs[c].label + "/" + sim::configHash(configs[c]);
                bool dup = false;
                for (const auto &k : seen_keys)
                    dup = dup || k == key;
                if (dup)
                    continue;
                seen_keys.push_back(key);
                all_configs.push_back(configs[c]);
                for (size_t b = 0; b < rows.size(); ++b)
                    all_rows[b].byConfig.push_back(
                        std::move(rows[b].byConfig[c]));
            }
        };

        // --- history depth / DDT (Section VI-A2) ---
        {
            std::vector<sim::Scenario> arms;
            for (unsigned depth : {32u, 128u, 256u, 1024u})
                arms.push_back(rsepArm(
                    "fifo-" + std::to_string(depth),
                    {{"rsep.history_depth", std::to_string(depth)}}));
            arms.push_back(rsepArm("ddt-16KB", {{"rsep.use_ddt", "true"}}));
            sweep("history depth sweep + DDT (VI-A2)", arms);
            std::cout << "paper shape: 128 entries reach most of the "
                         "potential (32 suffices except hmmer/xalancbmk); "
                         "the FIFO is >= the DDT by 0-2.5 points.\n";
        }

        // --- ISRB size (Section VI-A3) ---
        {
            std::vector<sim::Scenario> arms;
            for (unsigned entries : {4u, 8u, 24u, 64u})
                arms.push_back(rsepArm(
                    "isrb-" + std::to_string(entries),
                    {{"rsep.isrb_entries", std::to_string(entries)}}));
            sweep("ISRB size sweep (VI-A3)", arms);
            std::cout << "paper shape: 24 entries of two 6-bit counters "
                         "are not detrimental vs larger buffers.\n";
        }

        // --- hash width (Section IV-A) ---
        {
            std::vector<sim::Scenario> arms;
            for (unsigned bits : {8u, 10u, 14u, 16u})
                arms.push_back(
                    rsepArm("hash-" + std::to_string(bits),
                            {{"rsep.hash_bits", std::to_string(bits)}}));
            sweep("hash width sweep (IV-A)", arms);
            std::cout << "paper shape: 14 bits behave like full compare; "
                         "narrow and power-of-two folds add false pairs.\n";
        }

        // --- predictor size (IV-C vs VI-B) ---
        {
            std::vector<sim::Scenario> arms;
            arms.push_back(rsepArm("pred-42.6KB", {}));
            arms.push_back(rsepArm("pred-10.1KB",
                                   {{"rsep.ideal_predictor", "false"}}));
            sweep("distance predictor size (IV-C/VI-B)", arms);
            std::cout << "paper shape: good results persist at ~10KB.\n";
        }

        return bench::exportStats(ctx, all_configs, all_rows) ? 0 : 1;
    };
    return bench::runHarness(argc, argv, spec);
}

/**
 * @file
 * Ablations from Sections IV and VI-A on the paper's highlight
 * benchmarks:
 *  - FIFO history depth sweep (32/128/256/1024) + the DDT alternative
 *    (Section VI-A2: 128 entries suffice; FIFO beats the 16KB DDT);
 *  - ISRB size sweep (Section VI-A3: 24 entries are enough);
 *  - hash width sweep (Section IV-A: 14-bit fold; power-of-two widths
 *    collide more, hurting training via false pairs);
 *  - distance predictor size (42.6KB ideal vs 10.1KB realistic).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

namespace
{

using namespace rsep;

sim::SimConfig
rsepArm(const std::string &label)
{
    sim::SimConfig c = sim::SimConfig::rsepIdeal();
    c.label = label;
    bench::applyBenchDefaults(c);
    return c;
}

sim::MatrixOptions g_opts;

void
sweep(const std::string &title,
      const std::vector<sim::SimConfig> &configs)
{
    std::cout << "\n=== " << title << " ===\n";
    auto rows = sim::runMatrix(configs, bench::highlightBenchmarks(),
                               g_opts);
    sim::printSpeedupTable(std::cout, rows, configs);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rsep;

    g_opts = bench::matrixOptions(argc, argv);

    sim::SimConfig base = sim::SimConfig::baseline();
    bench::applyBenchDefaults(base);

    // --- history depth / DDT (Section VI-A2) ---
    {
        std::vector<sim::SimConfig> configs = {base};
        for (unsigned depth : {32u, 128u, 256u, 1024u}) {
            sim::SimConfig c = rsepArm("fifo-" + std::to_string(depth));
            c.mech.rsep.historyDepth = depth;
            configs.push_back(c);
        }
        sim::SimConfig ddt = rsepArm("ddt-16KB");
        ddt.mech.rsep.useDdt = true;
        configs.push_back(ddt);
        sweep("history depth sweep + DDT (VI-A2)", configs);
        std::cout << "paper shape: 128 entries reach most of the "
                     "potential (32 suffices except hmmer/xalancbmk); "
                     "the FIFO is >= the DDT by 0-2.5 points.\n";
    }

    // --- ISRB size (Section VI-A3) ---
    {
        std::vector<sim::SimConfig> configs = {base};
        for (unsigned entries : {4u, 8u, 24u, 64u}) {
            sim::SimConfig c = rsepArm("isrb-" + std::to_string(entries));
            c.mech.rsep.isrbEntries = entries;
            configs.push_back(c);
        }
        sweep("ISRB size sweep (VI-A3)", configs);
        std::cout << "paper shape: 24 entries of two 6-bit counters are "
                     "not detrimental vs larger buffers.\n";
    }

    // --- hash width (Section IV-A) ---
    {
        std::vector<sim::SimConfig> configs = {base};
        for (unsigned bits : {8u, 10u, 14u, 16u}) {
            sim::SimConfig c = rsepArm("hash-" + std::to_string(bits));
            c.mech.rsep.hashBits = bits;
            configs.push_back(c);
        }
        sweep("hash width sweep (IV-A)", configs);
        std::cout << "paper shape: 14 bits behave like full compare; "
                     "narrow and power-of-two folds add false pairs.\n";
    }

    // --- predictor size (IV-C vs VI-B) ---
    {
        std::vector<sim::SimConfig> configs = {base};
        sim::SimConfig ideal = rsepArm("pred-42.6KB");
        configs.push_back(ideal);
        sim::SimConfig small = rsepArm("pred-10.1KB");
        small.mech.rsep.idealPredictor = false;
        configs.push_back(small);
        sweep("distance predictor size (IV-C/VI-B)", configs);
        std::cout << "paper shape: good results persist at ~10KB.\n";
    }
    return 0;
}

/**
 * @file
 * Reproduces Fig. 5: percentage of committed instructions covered by
 * each mechanism. Two configurations per benchmark as in the paper:
 * RSEP alone, then VP on top of RSEP (bars split loads vs others).
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace rsep;
    using core::PipelineStats;

    bench::HarnessSpec spec;
    spec.name = "fig5_coverage";
    spec.description =
        "Reproduces Fig. 5: % of committed instructions covered per "
        "mechanism\n(RSEP arm, then RSEP + VP arm, zero-pred bars "
        "included).";
    spec.defaultScenarios = {"rsep+zp", "rsep+vpred+zp"};
    spec.report = [](const bench::HarnessResult &r) {
        std::printf(
            "=== Fig. 5: %% of committed instructions covered ===\n");
        std::printf("(first row per benchmark: RSEP; second: RSEP + VP)\n");
        std::printf("%-12s %8s %8s %8s %8s %8s %8s %8s %8s\n", "benchmark",
                    "zidiom", "move", "zp", "zp-ld", "dist", "dist-ld",
                    "vp", "vp-ld");

        auto row = [&](const sim::RunResult &rr) {
            double insts = static_cast<double>(
                rr.sum(&PipelineStats::committedInsts));
            auto pct = [&](StatCounter PipelineStats::* m) {
                return 100.0 * static_cast<double>(rr.sum(m)) / insts;
            };
            std::printf(
                " %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n",
                pct(&PipelineStats::zeroIdiomElim),
                pct(&PipelineStats::moveElim),
                pct(&PipelineStats::zeroPredOther),
                pct(&PipelineStats::zeroPredLoad),
                pct(&PipelineStats::distPredOther),
                pct(&PipelineStats::distPredLoad),
                pct(&PipelineStats::valuePredOther),
                pct(&PipelineStats::valuePredLoad));
        };

        for (const auto &mrow : r.rows) {
            const sim::RunResult &r1 = mrow.byConfig[0];
            const sim::RunResult &r2 = mrow.byConfig[1];
            std::printf("%-12s", mrow.benchmark.c_str());
            row(r1);
            std::printf("%-12s", "");
            row(r2);
            // Overlap diagnostic (perlbench: VP covers RSEP's catch).
            double overlap =
                100.0 *
                static_cast<double>(
                    r2.sum(&PipelineStats::rsepVpOverlap)) /
                static_cast<double>(
                    r2.sum(&PipelineStats::committedInsts));
            std::printf("%-12s rsep&vp-overlap: %.2f%%\n", "", overlap);
        }
    };
    return bench::runHarness(argc, argv, spec);
}

/**
 * @file
 * Reproduces Fig. 6: impact of the validation mechanism and of commit
 * sampling on RSEP. Arms: ideal validation, issue-twice locking the
 * instruction's FU, issue-twice to any FU (bypass network), and
 * issue-twice + sampling with start_train thresholds 15 and 63.
 */

#include <iostream>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace rsep;
    using equality::ValidationPolicy;

    std::vector<sim::SimConfig> configs = {
        sim::SimConfig::baseline(),
        sim::SimConfig::rsepValidation(ValidationPolicy::Ideal),
        sim::SimConfig::rsepValidation(ValidationPolicy::Issue2xLockFu),
        sim::SimConfig::rsepValidation(ValidationPolicy::Issue2xAnyFu),
        sim::SimConfig::rsepSampling(15),
        sim::SimConfig::rsepSampling(63),
    };
    for (auto &cfg : configs)
        bench::applyBenchDefaults(cfg);

    auto rows = sim::runMatrix(configs, wl::suiteNames(),
                               bench::matrixOptions(argc, argv));

    std::cout << "=== Fig. 6: validation & sampling impact ===\n";
    sim::printSpeedupTable(std::cout, rows, configs);
    std::cout << "\npaper shape: locking the FU hurts load-heavy "
                 "benchmarks badly (validation competes for load "
                 "ports); issuing to any FU ~= ideal; sampling with "
                 "threshold 15 causes a slowdown in bzip2 that "
                 "threshold 63 removes.\n";
    return 0;
}

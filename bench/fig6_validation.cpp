/**
 * @file
 * Reproduces Fig. 6: impact of the validation mechanism and of commit
 * sampling on RSEP. Arms: ideal validation, issue-twice locking the
 * instruction's FU, issue-twice to any FU (bypass network), and
 * issue-twice + sampling with start_train thresholds 15 and 63.
 */

#include <iostream>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace rsep;

    bench::HarnessSpec spec;
    spec.name = "fig6_validation";
    spec.description =
        "Reproduces Fig. 6: impact of the validation mechanism and of "
        "commit sampling\non RSEP.";
    spec.defaultScenarios = {
        "baseline",           "rsep-val-ideal",
        "rsep-val-2x-lock",   "rsep-val-2x-any",
        "rsep-val-2x-sample15", "rsep-val-2x-sample63"};
    spec.report = [](const bench::HarnessResult &r) {
        std::cout << "=== Fig. 6: validation & sampling impact ===\n";
        sim::printSpeedupTable(std::cout, r.rows, r.configs);
        std::cout << "\npaper shape: locking the FU hurts load-heavy "
                     "benchmarks badly (validation competes for load "
                     "ports); issuing to any FU ~= ideal; sampling with "
                     "threshold 15 causes a slowdown in bzip2 that "
                     "threshold 63 removes.\n";
    };
    return bench::runHarness(argc, argv, spec);
}

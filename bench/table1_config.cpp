/**
 * @file
 * Reproduces Table I (simulator configuration overview) and prints the
 * storage accounting the paper reports for its structures.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "rsep/costmodel.hh"

int
main()
{
    using namespace rsep;

    sim::SimConfig cfg = sim::SimConfig::baseline();
    std::cout << sim::describeTable1(cfg) << "\n";

    unsigned pregs = cfg.core.intPregs + cfg.core.fpPregs;

    std::cout << "RSEP structure storage (paper Sections IV-C/VI-B):\n";
    std::cout << "  ideal:     "
              << equality::describeStorage(
                     equality::RsepConfig::idealLarge(), pregs,
                     cfg.core.robSize)
              << "\n";
    std::cout << "  realistic: "
              << equality::describeStorage(
                     equality::RsepConfig::realistic(), pregs,
                     cfg.core.robSize)
              << "\n";

    std::cout << "\nComparator budget (Section IV-B2/IV-D2):\n";
    std::printf("  256-entry FIFO @ commit width 8: %llu comparators "
                "(paper: 2076)\n",
                (unsigned long long)equality::fifoComparators(256, 8));
    std::printf("  128-entry FIFO @ commit width 8: %llu comparators\n",
                (unsigned long long)equality::fifoComparators(128, 8));

    double hrf_frac = equality::hrfAreaFraction(16, 8, 64, 8, 8, 14);
    std::printf("\nHRF area vs PRF (Zyuban-Kogge trend, Section IV-D1): "
                "%.2f%% (paper: < 5%%)\n",
                100.0 * hrf_frac);
    return 0;
}

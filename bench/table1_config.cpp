/**
 * @file
 * Reproduces Table I (simulator configuration overview) and prints the
 * storage accounting the paper reports for its structures. With
 * --scenario / --scenario-file, describes those arms instead of the
 * baseline (no simulation is run).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "rsep/costmodel.hh"

int
main(int argc, char **argv)
{
    using namespace rsep;

    bench::HarnessSpec spec;
    spec.name = "table1_config";
    spec.description =
        "Prints Table I (simulator configuration overview) and the "
        "paper's structure\nstorage accounting; describes scenarios "
        "instead of simulating them.";
    spec.custom = [&spec](const bench::DriverContext &ctx) {
        bench::warnUnusedMatrixFlags(spec.name, ctx, ctx.scenarios.size());
        std::vector<sim::Scenario> scenarios = ctx.scenarios;
        if (scenarios.empty())
            scenarios.push_back(*sim::findScenario("baseline"));

        for (size_t i = 0; i < scenarios.size(); ++i) {
            const sim::SimConfig &cfg = scenarios[i].config;
            if (i)
                std::cout << "\n";
            if (ctx.scenariosOverridden)
                std::cout << "--- scenario " << scenarios[i].name
                          << " (config hash " << sim::configHash(cfg)
                          << ") ---\n";
            std::cout << sim::describeTable1(cfg) << "\n";

            unsigned pregs = cfg.core.intPregs + cfg.core.fpPregs;

            std::cout
                << "RSEP structure storage (paper Sections IV-C/VI-B):\n";
            std::cout << "  ideal:     "
                      << equality::describeStorage(
                             equality::RsepConfig::idealLarge(), pregs,
                             cfg.core.robSize)
                      << "\n";
            std::cout << "  realistic: "
                      << equality::describeStorage(
                             equality::RsepConfig::realistic(), pregs,
                             cfg.core.robSize)
                      << "\n";

            std::cout << "\nComparator budget (Section IV-B2/IV-D2):\n";
            std::printf("  256-entry FIFO @ commit width %u: %llu "
                        "comparators (paper: 2076)\n",
                        cfg.core.commitWidth,
                        (unsigned long long)equality::fifoComparators(
                            256, cfg.core.commitWidth));
            std::printf("  128-entry FIFO @ commit width %u: %llu "
                        "comparators\n",
                        cfg.core.commitWidth,
                        (unsigned long long)equality::fifoComparators(
                            128, cfg.core.commitWidth));

            double hrf_frac =
                equality::hrfAreaFraction(16, 8, 64, 8, 8, 14);
            std::printf("\nHRF area vs PRF (Zyuban-Kogge trend, Section "
                        "IV-D1): %.2f%% (paper: < 5%%)\n",
                        100.0 * hrf_frac);
        }
        return 0;
    };
    return bench::runHarness(argc, argv, spec);
}

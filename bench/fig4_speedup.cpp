/**
 * @file
 * Reproduces Fig. 4: speedup over the baseline of zero prediction,
 * move elimination, RSEP (ideal validation, large history), value
 * prediction (D-VTAGE ~256KB) and RSEP+VP, across all 29 benchmarks.
 */

#include <iostream>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace rsep;

    bench::HarnessSpec spec;
    spec.name = "fig4_speedup";
    spec.description =
        "Reproduces Fig. 4: speedup over baseline of the paper's five "
        "mechanism arms\nacross all 29 benchmarks.";
    spec.defaultScenarios = {"baseline",  "zero-pred", "move-elim",
                             "rsep",      "vpred",     "rsep+vpred"};
    spec.report = [](const bench::HarnessResult &r) {
        std::cout << "=== Fig. 4: speedup over baseline ===\n";
        sim::printSpeedupTable(std::cout, r.rows, r.configs);
        std::cout << "\npaper shape: RSEP 5-11% in {mcf, dealII, hmmer, "
                     "libquantum, omnetpp, xalancbmk}; VP better in "
                     "{perlbench, wrf, xalancbmk}; zero pred only helps "
                     "gamess/libquantum; move elim only dealII/xalancbmk; "
                     "RSEP+VP >= max(RSEP, VP) except perlbench where VP "
                     "subsumes RSEP.\n";
    };
    return bench::runHarness(argc, argv, spec);
}

/**
 * @file
 * Reproduces Fig. 4: speedup over the baseline of zero prediction,
 * move elimination, RSEP (ideal validation, large history), value
 * prediction (D-VTAGE ~256KB) and RSEP+VP, across all 29 benchmarks.
 */

#include <iostream>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace rsep;

    std::vector<sim::SimConfig> configs = {
        sim::SimConfig::baseline(),     sim::SimConfig::zeroPredOnly(),
        sim::SimConfig::moveElimOnly(), sim::SimConfig::rsepIdeal(),
        sim::SimConfig::vpOnly(),       sim::SimConfig::rsepPlusVp(),
    };
    for (auto &cfg : configs)
        bench::applyBenchDefaults(cfg);

    auto rows = sim::runMatrix(configs, wl::suiteNames(),
                               bench::matrixOptions(argc, argv));

    std::cout << "=== Fig. 4: speedup over baseline ===\n";
    sim::printSpeedupTable(std::cout, rows, configs);
    std::cout << "\npaper shape: RSEP 5-11% in {mcf, dealII, hmmer, "
                 "libquantum, omnetpp, xalancbmk}; VP better in "
                 "{perlbench, wrf, xalancbmk}; zero pred only helps "
                 "gamess/libquantum; move elim only dealII/xalancbmk; "
                 "RSEP+VP >= max(RSEP, VP) except perlbench where VP "
                 "subsumes RSEP.\n";
    return 0;
}

#include "bench_util.hh"

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>

#include "common/env.hh"
#include "common/fault.hh"
#include "serve/client.hh"
#include "wl/trace_cache.hh"
#include "wl/workload_spec.hh"

namespace rsep::bench
{

void
applyBenchDefaults(sim::SimConfig &cfg)
{
    if (!simScaleOverridden()) {
        cfg.warmupInsts = static_cast<u64>(cfg.warmupInsts * 0.4);
        cfg.measureInsts = static_cast<u64>(cfg.measureInsts * 0.4);
    }
    if (!checkpointsOverridden())
        cfg.checkpoints = 2;
}

std::vector<std::string>
highlightBenchmarks()
{
    return {"mcf", "dealII", "hmmer", "libquantum", "omnetpp",
            "xalancbmk"};
}

void
printScenarioList(std::ostream &os)
{
    os << "registered scenarios:\n";
    for (const sim::ScenarioInfo &info : sim::registeredScenarios()) {
        os << "  " << info.name;
        for (const std::string &alias : info.aliases)
            os << " | " << alias;
        os << "\n      " << info.description << "\n";
    }
    os << "\nScenario files (--scenario-file) can define further arms; "
          "see DESIGN.md,\n\"Scenario files and stat export\", and "
          "examples/scenarios/.\n";
}

void
printWorkloadList(std::ostream &os)
{
    os << "registered workloads (* = defined/overridden at runtime):\n";
    char line[128];
    for (const wl::WorkloadInfo &info : wl::listWorkloads()) {
        std::snprintf(line, sizeof(line), "  %c %-34s %-14s %s\n",
                      info.fromOverlay ? '*' : ' ', info.key.c_str(),
                      info.archetype.c_str(), info.hash.c_str());
        os << line;
    }
    os << "\nWorkload files (--workload-file) and [workload] sections in "
          "scenario files\ncan define further kernels; see DESIGN.md, "
          "\"First-class workloads\".\n";
}

void
warnUnusedMatrixFlags(const char *driver, const DriverContext &ctx,
                      size_t scenarios_used)
{
    if (!ctx.csvPath.empty() || !ctx.jsonPath.empty() || ctx.statsTable ||
        ctx.timings)
        std::fprintf(stderr,
                     "%s: warning: no experiment matrix is run here; "
                     "--csv/--json/--stats/--timings are ignored\n",
                     driver);
    if (ctx.matrix.shard.active() || !ctx.matrix.cacheDir.empty() ||
        ctx.matrix.traceIo.active() || ctx.matrix.sampling.active())
        std::fprintf(stderr,
                     "%s: warning: no experiment matrix is run here; "
                     "--shard/--cache-dir/--record-trace/--replay-trace/"
                     "--sample-every are ignored\n",
                     driver);
    if (ctx.scenarios.size() > scenarios_used)
        std::fprintf(stderr,
                     "%s: warning: ignoring %zu extra scenario(s); only "
                     "the first %zu are used\n",
                     driver, ctx.scenarios.size() - scenarios_used,
                     scenarios_used);
    if (!ctx.workloads.empty())
        std::fprintf(stderr,
                     "%s: warning: this driver picks its own benchmarks; "
                     "--workload/--workload-file selections are ignored\n",
                     driver);
    if (!ctx.connectSocket.empty())
        std::fprintf(stderr,
                     "%s: warning: no experiment matrix is run here; "
                     "--connect is ignored\n",
                     driver);
}

namespace
{

void
printHelp(const HarnessSpec &spec)
{
    std::printf("usage: %s [options]%s\n", spec.name,
                spec.positionalBenchmarks ? " [benchmark ...]"
                : spec.positionalHelp    ? spec.positionalHelp
                                         : "");
    if (spec.description[0])
        std::printf("%s\n", spec.description);
    std::printf(
        "\noptions:\n"
        "  --scenario NAME[,NAME...]  run these registered scenarios\n"
        "                             (repeatable; see --list-scenarios)\n"
        "  --scenario-file PATH       load scenarios (and [workload]\n"
        "                             definitions) from a .scn file\n"
        "                             (repeatable)\n"
        "  --list-scenarios           list registered scenarios and exit\n"
        "  --workload NAME[,NAME...]  run these workloads instead of the\n"
        "                             driver's benchmark set (repeatable;\n"
        "                             see --list-workloads)\n"
        "  --workload-file PATH       load [workload] definitions from a\n"
        "                             .scn file and run them (repeatable)\n"
        "  --list-workloads           list registered workloads and exit\n"
        "  --csv PATH                 write the stat matrix as CSV\n"
        "  --json PATH                write the stat matrix as JSON\n"
        "  --stats                    print per-engine counters per cell\n"
        "  --timings                  add the host-dependent timing.*\n"
        "                             counters to the dumps (off by\n"
        "                             default so dumps stay\n"
        "                             bit-reproducible); the counter\n"
        "                             list is printed below, generated\n"
        "                             from the RunTiming schema so it\n"
        "                             cannot drift from the code\n"
        "  --steal cell|window        work-stealing granularity of the\n"
        "                             parallel matrix: per-checkpoint\n"
        "                             cells (default) or whole\n"
        "                             (benchmark, scenario) run windows;\n"
        "                             results are bit-identical either\n"
        "                             way, only wall-clock changes\n"
        "  --seed N                   override every scenario's [sim]\n"
        "                             seed (new config hash: fresh cache\n"
        "                             cells and shard assignment)\n"
        "  --jobs N, -jN              worker threads (0 = auto: RSEP_JOBS\n"
        "                             or the hardware thread count)\n"
        "  --shard I/N                run only this process's slice of\n"
        "                             the matrix; merge the dumps with\n"
        "                             rsep_merge (stable hash partition)\n"
        "  --cache-dir PATH           persistent per-cell result cache:\n"
        "                             skip already-simulated cells and\n"
        "                             make interrupted sweeps resumable\n"
        "  --record-trace DIR         write each live-emulated cell's\n"
        "                             committed-path stream as a .rtr\n"
        "                             trace (record once, replay many)\n"
        "  --replay-trace DIR         feed the pipeline from recorded\n"
        "                             .rtr traces instead of functional\n"
        "                             emulation (byte-identical dumps)\n"
        "  --trace-cache-mb N         bound the in-process decoded-trace\n"
        "                             cache (LRU) shared by replayed\n"
        "                             cells; 0 = unlimited (default 1024)\n"
        "  --sample-every N           time-series sampling: snapshot the\n"
        "                             live counters every N cycles of\n"
        "                             each cell's measurement run into\n"
        "                             per-cell .rts/.csv series (k/M/G\n"
        "                             suffixes accepted; bypasses the\n"
        "                             result cache; inspect with\n"
        "                             rsep_samples)\n"
        "  --sample-dir PATH          sample-series output directory\n"
        "                             (default: samples)\n"
        "  --connect SOCK             run the matrix on a warm rsep_serve\n"
        "                             daemon at this Unix socket instead\n"
        "                             of in-process (byte-identical\n"
        "                             output; amortizes startup, trace\n"
        "                             decode and caches across runs).\n"
        "                             Server-side knobs (--jobs,\n"
        "                             --cache-dir, --shard, --steal,\n"
        "                             --record-trace, --trace-cache-mb)\n"
        "                             are rejected here: set them on the\n"
        "                             rsep_serve command line\n"
        "  --connect-timeout MS       keep re-trying the initial connect\n"
        "                             this long (daemon still warming\n"
        "                             up); 0 = one attempt (default)\n"
        "  --deadline MS              hard wall-clock ceiling on the\n"
        "                             whole remote request, retries\n"
        "                             included; 0 = none (default)\n"
        "  --retries N                reconnect+resubmit attempts after\n"
        "                             a transient connection failure or\n"
        "                             server-busy rejection (default 3;\n"
        "                             results stay byte-identical —\n"
        "                             Submit is idempotent)\n"
        "  --fault SPEC               arm deterministic fault injection\n"
        "                             (testing; same grammar as\n"
        "                             RSEP_FAULT — DESIGN.md §14), e.g.\n"
        "                             serve.send:after=3:fail=econnreset\n"
        "  --help, -h                 show this help\n");
    // The timing.* counter list is generated from the one visitStats
    // enumeration the export layer itself walks — it cannot go stale.
    std::printf("\n--timings counters (per run):\n");
    sim::RunTiming timing;
    visitStats(timing, [](const char *name, StatCounter &) {
        std::printf("  %s\n", name);
    });
    std::printf("  timing.phaseN_wall_micros   (one per checkpoint N)\n");
    if (!spec.defaultScenarios.empty()) {
        std::printf("\ndefault scenarios:");
        for (const std::string &s : spec.defaultScenarios)
            std::printf(" %s", s.c_str());
        std::printf("\n");
    }
    if (spec.positionalBenchmarks)
        std::printf("\npositional arguments name benchmarks (default:%s"
                    " the paper suite)\n",
                    spec.benchmarks.empty() ? "" : " a subset of");
    std::printf("\nStat dumps are keyed by (benchmark, scenario, config "
                "hash).\nEnvironment: RSEP_SIM_SCALE, RSEP_CHECKPOINTS, "
                "RSEP_JOBS.\n");
}

/** Split a NAME[,NAME...] list. */
std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string item;
    while (std::getline(is, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

int
usageError(const HarnessSpec &spec, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s (try --help)\n", spec.name, msg.c_str());
    return 2;
}

/**
 * Parse the common driver flags. Returns -1 to continue running, or a
 * process exit code when the invocation is complete (help/list) or
 * malformed.
 */
int
parseDriverArgs(int argc, char **argv, const HarnessSpec &spec,
                DriverContext &ctx)
{
    auto addScenarioNames = [&](const std::string &list,
                                std::string &err) {
        for (const std::string &name : splitCommas(list)) {
            auto sc = sim::findScenario(name);
            if (!sc) {
                err = "unknown scenario '" + name +
                      "' (see --list-scenarios)";
                return false;
            }
            if (spec.benchDefaults)
                applyBenchDefaults(sc->config);
            ctx.scenarios.push_back(std::move(*sc));
        }
        ctx.scenariosOverridden = true;
        return true;
    };
    auto addScenarioFile = [&](const std::string &path, std::string &err) {
        sim::ScenarioParse parsed = sim::parseScenarioFile(path);
        if (!parsed.ok()) {
            err = parsed.error;
            return false;
        }
        // [workload] definitions become part of the registry (so the
        // file's names — overridden suite benchmarks included — resolve
        // in this run), but only join the run set via --workload[-file].
        for (const wl::WorkloadSpec &w : parsed.workloads)
            wl::registerWorkload(w);
        for (auto &sc : parsed.scenarios)
            ctx.scenarios.push_back(std::move(sc));
        if (!parsed.scenarios.empty())
            ctx.scenariosOverridden = true;
        return true;
    };

    // --workload names cannot resolve until every --workload-file /
    // --scenario-file has registered its definitions, so selections are
    // collected raw (resolved == false) and resolved after the loop.
    std::vector<std::pair<std::string, bool>> workload_sel;
    // Flags that conflict with --connect but leave no trace in ctx
    // (default values / applied immediately), tracked for the combo
    // check after the loop — --connect may come later in argv.
    bool saw_steal = false, saw_trace_cache = false, saw_jobs = false;
    bool saw_connect_timeout = false, saw_deadline = false,
         saw_retries = false;
    auto addWorkloadFile = [&](const std::string &path, std::string &err) {
        sim::ScenarioParse parsed = sim::parseScenarioFile(path);
        if (!parsed.ok()) {
            err = parsed.error;
            return false;
        }
        if (parsed.workloads.empty()) {
            err = path + ": no [workload] definitions found";
            return false;
        }
        if (!parsed.scenarios.empty())
            std::fprintf(stderr,
                         "%s: warning: %s defines %zu scenario(s); "
                         "--workload-file only takes its workloads (use "
                         "--scenario-file for the arms)\n",
                         spec.name, path.c_str(),
                         parsed.scenarios.size());
        for (const wl::WorkloadSpec &w : parsed.workloads)
            workload_sel.emplace_back(wl::registerWorkload(w), true);
        return true;
    };

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        std::string err;

        // `--flag value` and `--flag=value` both work.
        auto valueOf = [&](const char *flag,
                           std::string &value) -> int {
            size_t n = std::strlen(flag);
            if (a.compare(0, n, flag) != 0)
                return 0; // not this flag.
            if (a.size() == n) {
                if (i + 1 >= argc)
                    return -1; // dangling.
                value = argv[++i];
                return 1;
            }
            if (a[n] != '=')
                return 0;
            value = a.substr(n + 1);
            return 1;
        };

        if (a == "--help" || a == "-h") {
            printHelp(spec);
            return 0;
        }
        if (a == "--list-scenarios") {
            printScenarioList(std::cout);
            return 0;
        }
        if (a == "--list-workloads") {
            // Load any later --workload-file / --scenario-file flags
            // first so the listing reflects the full overlay.
            for (int j = i + 1; j < argc; ++j) {
                std::string rest = argv[j];
                for (const char *f : {"--workload-file", "--scenario-file"}) {
                    std::string path;
                    size_t n = std::strlen(f);
                    if (rest == f && j + 1 < argc)
                        path = argv[j + 1];
                    else if (rest.compare(0, n, f) == 0 &&
                             rest.size() > n && rest[n] == '=')
                        path = rest.substr(n + 1);
                    if (!path.empty()) {
                        sim::ScenarioParse parsed =
                            sim::parseScenarioFile(path);
                        if (parsed.ok())
                            for (const wl::WorkloadSpec &w :
                                 parsed.workloads)
                                wl::registerWorkload(w);
                    }
                }
            }
            printWorkloadList(std::cout);
            return 0;
        }
        if (a == "--stats") {
            ctx.statsTable = true;
            continue;
        }
        if (a == "--timings") {
            ctx.timings = true;
            continue;
        }
        std::string value;
        int hit;
        if ((hit = valueOf("--shard", value)) != 0) {
            if (hit < 0)
                return usageError(spec, "--shard requires INDEX/COUNT "
                                        "(e.g. 0/4)");
            if (!sim::parseShardValue(value, ctx.matrix.shard, err))
                return usageError(spec, err);
            continue;
        }
        if ((hit = valueOf("--steal", value)) != 0) {
            if (hit < 0)
                return usageError(spec, "--steal requires 'cell' or "
                                        "'window'");
            if (!sim::parseStealValue(value, ctx.matrix.steal, err))
                return usageError(spec, err);
            saw_steal = true;
            continue;
        }
        if ((hit = valueOf("--cache-dir", value)) != 0) {
            if (hit < 0)
                return usageError(spec, "--cache-dir requires a path");
            if (value.empty())
                return usageError(spec, "--cache-dir path is empty");
            ctx.matrix.cacheDir = value;
            continue;
        }
        if ((hit = valueOf("--scenario-file", value)) != 0) {
            if (hit < 0)
                return usageError(spec, "--scenario-file requires a path");
            if (!addScenarioFile(value, err))
                return usageError(spec, err);
            continue;
        }
        if ((hit = valueOf("--scenario", value)) != 0) {
            if (hit < 0)
                return usageError(spec, "--scenario requires a name");
            if (!addScenarioNames(value, err))
                return usageError(spec, err);
            continue;
        }
        if ((hit = valueOf("--workload-file", value)) != 0) {
            if (hit < 0)
                return usageError(spec, "--workload-file requires a path");
            if (!addWorkloadFile(value, err))
                return usageError(spec, err);
            continue;
        }
        if ((hit = valueOf("--workload", value)) != 0) {
            if (hit < 0)
                return usageError(spec, "--workload requires a name");
            for (const std::string &name : splitCommas(value))
                workload_sel.emplace_back(name, false);
            continue;
        }
        if ((hit = valueOf("--record-trace", value)) != 0) {
            if (hit < 0)
                return usageError(spec, "--record-trace requires a path");
            if (value.empty())
                return usageError(spec, "--record-trace path is empty");
            ctx.matrix.traceIo.recordDir = value;
            continue;
        }
        if ((hit = valueOf("--replay-trace", value)) != 0) {
            if (hit < 0)
                return usageError(spec, "--replay-trace requires a path");
            if (value.empty())
                return usageError(spec, "--replay-trace path is empty");
            ctx.matrix.traceIo.replayDir = value;
            continue;
        }
        if ((hit = valueOf("--trace-cache-mb", value)) != 0) {
            if (hit < 0)
                return usageError(spec, "--trace-cache-mb requires a "
                                        "value (MB; 0 = unlimited)");
            u64 mb = 0;
            if (!parseU64(value, mb) || mb > (1ull << 40))
                return usageError(spec, "invalid --trace-cache-mb '" +
                                            value + "'");
            // Applied immediately: the cache is a process-wide
            // singleton, not a per-matrix object.
            wl::traceCache().setCapacityBytes(mb << 20);
            saw_trace_cache = true;
            continue;
        }
        if ((hit = valueOf("--sample-every", value)) != 0) {
            if (hit < 0)
                return usageError(spec, "--sample-every requires a cycle "
                                        "count (k/M/G suffixes allowed)");
            u64 every = 0;
            if (!parseScaledU64(value, every) || every == 0)
                return usageError(spec, "invalid --sample-every '" +
                                            value +
                                            "' (expected a positive "
                                            "cycle count, e.g. 5000 or "
                                            "10k)");
            ctx.matrix.sampling.every = every;
            continue;
        }
        if ((hit = valueOf("--sample-dir", value)) != 0) {
            if (hit < 0)
                return usageError(spec, "--sample-dir requires a path");
            if (value.empty())
                return usageError(spec, "--sample-dir path is empty");
            ctx.matrix.sampling.dir = value;
            continue;
        }
        if ((hit = valueOf("--seed", value)) != 0) {
            if (hit < 0)
                return usageError(spec, "--seed requires a value");
            u64 seed = 0;
            if (!parseU64(value, seed))
                return usageError(spec, "invalid seed '" + value +
                                            "' (expected an unsigned "
                                            "integer)");
            ctx.seedOverridden = true;
            ctx.seedValue = seed;
            continue;
        }
        if ((hit = valueOf("--csv", value)) != 0) {
            if (hit < 0)
                return usageError(spec, "--csv requires a path");
            ctx.csvPath = value;
            continue;
        }
        if ((hit = valueOf("--json", value)) != 0) {
            if (hit < 0)
                return usageError(spec, "--json requires a path");
            ctx.jsonPath = value;
            continue;
        }
        if (a == "--jobs" || a == "-j" || a.rfind("--jobs=", 0) == 0 ||
            (a.rfind("-j", 0) == 0 && a.size() > 2)) {
            // Delegate to the strict shared jobs grammar: hand it a
            // two-entry argv slice so `--jobs N` consumes its value.
            char *slice[3] = {argv[0], argv[i],
                              i + 1 < argc ? argv[i + 1] : nullptr};
            int slice_argc = (a == "--jobs" || a == "-j") && slice[2]
                                 ? 3
                                 : 2;
            unsigned jobs = 0;
            if (!sim::parseJobsArg(slice_argc, slice, jobs, err))
                return usageError(spec, err);
            ctx.matrix.jobs = jobs;
            saw_jobs = true;
            if (slice_argc == 3)
                ++i;
            continue;
        }
        if ((hit = valueOf("--connect-timeout", value)) != 0) {
            if (hit < 0)
                return usageError(spec, "--connect-timeout requires a "
                                        "duration in ms");
            if (!parseU64(value, ctx.connectTimeoutMs))
                return usageError(spec, "bad --connect-timeout '" +
                                            value + "'");
            saw_connect_timeout = true;
            continue;
        }
        if ((hit = valueOf("--connect", value)) != 0) {
            if (hit < 0)
                return usageError(spec, "--connect requires a socket "
                                        "path");
            if (value.empty())
                return usageError(spec, "--connect socket path is empty");
            ctx.connectSocket = value;
            continue;
        }
        if ((hit = valueOf("--deadline", value)) != 0) {
            if (hit < 0)
                return usageError(spec, "--deadline requires a duration "
                                        "in ms");
            if (!parseU64(value, ctx.deadlineMs))
                return usageError(spec, "bad --deadline '" + value + "'");
            saw_deadline = true;
            continue;
        }
        if ((hit = valueOf("--retries", value)) != 0) {
            if (hit < 0)
                return usageError(spec, "--retries requires a count");
            u64 n = 0;
            if (!parseU64(value, n) || n > 100)
                return usageError(spec, "bad --retries '" + value +
                                            "' (0-100)");
            ctx.retries = static_cast<unsigned>(n);
            saw_retries = true;
            continue;
        }
        if ((hit = valueOf("--fault", value)) != 0) {
            if (hit < 0)
                return usageError(spec, "--fault requires an injection "
                                        "spec (see DESIGN.md §14)");
            if (!fault::armFromSpec(value, &err))
                return usageError(spec, err);
            continue;
        }
        if (!a.empty() && a[0] == '-')
            return usageError(spec, "unknown option '" + a + "'");
        ctx.positional.push_back(a);
    }

    // --connect hands execution to the daemon; flags steering resources
    // the server owns are errors, not silent no-ops (the run would
    // otherwise look tuned while the server ignored the knob).
    if (!ctx.connectSocket.empty()) {
        const char *clash = nullptr;
        if (saw_jobs)
            clash = "--jobs";
        else if (saw_steal)
            clash = "--steal";
        else if (saw_trace_cache)
            clash = "--trace-cache-mb";
        else if (ctx.matrix.shard.active())
            clash = "--shard";
        else if (!ctx.matrix.cacheDir.empty())
            clash = "--cache-dir";
        else if (!ctx.matrix.traceIo.recordDir.empty())
            clash = "--record-trace";
        if (clash)
            return usageError(spec,
                              std::string(clash) +
                                  " is not supported with --connect: "
                                  "the server owns that resource (set "
                                  "it on the rsep_serve command line)");
    } else {
        // The remote-recovery knobs steer the client conversation; on a
        // local run they would be silent no-ops.
        const char *orphan = saw_connect_timeout ? "--connect-timeout"
                             : saw_deadline      ? "--deadline"
                             : saw_retries       ? "--retries"
                                                 : nullptr;
        if (orphan)
            return usageError(spec, std::string(orphan) +
                                        " only applies with --connect");
    }

    // Resolve --workload names now that every file is loaded.
    for (const auto &[name, resolved] : workload_sel) {
        if (resolved) {
            ctx.workloads.push_back(name);
            continue;
        }
        auto key = wl::resolveWorkloadKey(name);
        if (!key)
            return usageError(spec, "unknown workload '" + name +
                                        "' (see --list-workloads)");
        ctx.workloads.push_back(*key);
    }

    // --seed overrides every scenario parsed so far; default-scenario
    // runs apply it when the configs are built (runHarness).
    if (ctx.seedOverridden)
        for (sim::Scenario &sc : ctx.scenarios)
            sc.config.seed = ctx.seedValue;

    if (!ctx.positional.empty() && !spec.positionalBenchmarks &&
        !spec.custom)
        return usageError(spec, "unexpected argument '" +
                                    ctx.positional.front() + "'");
    return -1;
}

std::vector<std::string>
benchmarksFor(const HarnessSpec &spec, const DriverContext &ctx)
{
    // --workload/--workload-file selections are already run-cell keys.
    if (!ctx.workloads.empty())
        return ctx.workloads;
    std::vector<std::string> names;
    if (spec.positionalBenchmarks && !ctx.positional.empty())
        names = ctx.positional;
    else if (!spec.benchmarks.empty())
        names = spec.benchmarks;
    else
        names = wl::suiteNames();
    // Translate names to run-cell keys so runtime [workload] overrides
    // apply (a pristine suite name maps to itself, keeping flag-less
    // dumps and cache/shard identities untouched). Unknown names pass
    // through to the runner's own diagnostics.
    for (std::string &n : names)
        if (auto key = wl::resolveWorkloadKey(n))
            n = *key;
    return names;
}

/**
 * A sharded run holds only its slice of the matrix, so the per-driver
 * tables (which expect every row) are suppressed in favour of a
 * pointer at the merge step.
 */
void
printShardNotice(const DriverContext &ctx)
{
    std::cout << "\nshard " << ctx.matrix.shard.index << "/"
              << ctx.matrix.shard.count
              << ": partial matrix; tables are suppressed.\n"
                 "Export every shard with --csv/--json and combine with "
                 "rsep_merge\nto recover the full table and figure "
                 "summaries.\n";
    if (ctx.csvPath.empty() && ctx.jsonPath.empty())
        std::cout << "(warning: no --csv/--json requested; this shard's "
                     "results are not\nexported anywhere)\n";
}

/**
 * Run a scenario matrix in-process or, with --connect, on the daemon.
 * The remote path is a drop-in: runMatrixRemote reconstructs the same
 * rows runMatrix would produce (and verifies its reconstruction
 * against the server's canonical dump), so the report/export code
 * below never knows where the cells ran.
 */
std::vector<sim::MatrixRow>
runDriverMatrix(const DriverContext &ctx,
                const std::vector<sim::Scenario> &scenarios,
                const std::vector<std::string> &benchmarks)
{
    if (ctx.connectSocket.empty()) {
        std::vector<sim::SimConfig> configs;
        configs.reserve(scenarios.size());
        for (const sim::Scenario &sc : scenarios)
            configs.push_back(sc.config);
        return sim::runMatrix(configs, benchmarks, ctx.matrix);
    }
    serve::ClientOptions copts;
    copts.socketPath = ctx.connectSocket;
    copts.sampleEvery = ctx.matrix.sampling.every;
    copts.sampleDir = ctx.matrix.sampling.dir;
    copts.replayDir = ctx.matrix.traceIo.replayDir;
    copts.progress = ctx.matrix.progress;
    copts.connectTimeoutMs = ctx.connectTimeoutMs;
    copts.deadlineMs = ctx.deadlineMs;
    copts.maxRetries = ctx.retries;
    return serve::runMatrixRemote(scenarios, benchmarks, copts);
}

} // namespace

bool
exportStats(const DriverContext &ctx,
            const std::vector<sim::SimConfig> &configs,
            const std::vector<sim::MatrixRow> &rows)
{
    if (ctx.csvPath.empty() && ctx.jsonPath.empty() && !ctx.statsTable)
        return true;
    std::vector<sim::StatRow> stat_rows =
        sim::collectStatRows(configs, rows, ctx.timings);
    bool ok = true;
    std::string err;
    if (!ctx.csvPath.empty()) {
        if (sim::writeStatsFile(ctx.csvPath, sim::CsvStatSink{},
                                stat_rows, &err))
            std::fprintf(stderr, "[export] wrote %s\n",
                         ctx.csvPath.c_str());
        else
            ok = (std::fprintf(stderr, "[export] %s\n", err.c_str()),
                  false);
    }
    if (!ctx.jsonPath.empty()) {
        if (sim::writeStatsFile(ctx.jsonPath, sim::JsonStatSink{},
                                stat_rows, &err))
            std::fprintf(stderr, "[export] wrote %s\n",
                         ctx.jsonPath.c_str());
        else
            ok = (std::fprintf(stderr, "[export] %s\n", err.c_str()),
                  false);
    }
    if (ctx.statsTable) {
        std::cout << "\n=== per-engine counters by (benchmark, scenario, "
                     "config hash) ===\n";
        sim::TableStatSink{}.write(std::cout, stat_rows);
    }
    return ok;
}

int
runScenarioMatrix(const HarnessSpec &spec, const DriverContext &ctx,
                  const std::vector<sim::Scenario> &scenarios)
{
    if (scenarios.empty())
        return usageError(spec, "no scenarios to run");

    std::vector<sim::SimConfig> configs;
    configs.reserve(scenarios.size());
    for (const sim::Scenario &sc : scenarios)
        configs.push_back(sc.config);

    auto rows = runDriverMatrix(ctx, scenarios, benchmarksFor(spec, ctx));

    std::cout << "=== scenario matrix: " << configs.size()
              << " scenario(s) ===\n";
    for (size_t c = 0; c < configs.size(); ++c)
        std::cout << "  " << scenarios[c].name << "  (config hash "
                  << sim::configHash(configs[c]) << ")\n";
    if (ctx.matrix.shard.active()) {
        printShardNotice(ctx);
    } else if (configs.size() > 1) {
        std::cout << "\nspeedup over '" << scenarios[0].name << "':\n";
        sim::printSpeedupTable(std::cout, rows, configs);
    } else {
        std::cout << "\nbenchmark IPC (hmean over checkpoints):\n";
        for (const auto &row : rows)
            std::printf("%-12s %8.3f\n", row.benchmark.c_str(),
                        row.byConfig[0].ipcHmean());
    }
    return exportStats(ctx, configs, rows) ? 0 : 1;
}

int
runHarness(int argc, char **argv, const HarnessSpec &spec)
{
    // RSEP_FAULT arms deterministic fault injection in any driver
    // (DESIGN.md §14); unarmed points are zero-cost no-ops.
    fault::initFromEnv();

    DriverContext ctx;
    int rc = parseDriverArgs(argc, argv, spec, ctx);
    if (rc >= 0)
        return rc;

    if (spec.custom)
        return spec.custom(ctx);

    if (ctx.scenariosOverridden)
        return runScenarioMatrix(spec, ctx, ctx.scenarios);

    HarnessResult result;
    std::vector<sim::Scenario> default_scenarios;
    for (const std::string &name : spec.defaultScenarios) {
        auto sc = sim::findScenario(name);
        if (!sc)
            return usageError(spec, "internal: unregistered default "
                                    "scenario '" +
                                        name + "'");
        if (spec.benchDefaults)
            applyBenchDefaults(sc->config);
        if (ctx.seedOverridden)
            sc->config.seed = ctx.seedValue;
        result.configs.push_back(sc->config);
        default_scenarios.push_back(std::move(*sc));
    }

    result.rows =
        runDriverMatrix(ctx, default_scenarios, benchmarksFor(spec, ctx));
    if (ctx.matrix.shard.active())
        printShardNotice(ctx); // bespoke reports need the full matrix.
    else if (spec.report)
        spec.report(result);
    else if (result.configs.size() > 1)
        sim::printSpeedupTable(std::cout, result.rows, result.configs);
    return exportStats(ctx, result.configs, result.rows) ? 0 : 1;
}

} // namespace rsep::bench

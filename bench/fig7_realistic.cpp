/**
 * @file
 * Reproduces Fig. 7: ideal RSEP (42.6KB predictor, very large
 * structures, free validation) vs the realistic 10.8KB implementation
 * (10.1KB predictor, 128-entry FIFO history, 24-entry ISRB, sampled
 * training at threshold 63, issue-twice-any-FU validation), plus the
 * accuracy/coverage summary of Section VI-B.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "rsep/costmodel.hh"

int
main(int argc, char **argv)
{
    using namespace rsep;
    using core::PipelineStats;

    bench::HarnessSpec spec;
    spec.name = "fig7_realistic";
    spec.description =
        "Reproduces Fig. 7: ideal vs realistic RSEP, plus the Section "
        "VI-B\naccuracy/coverage summary.";
    spec.defaultScenarios = {"baseline", "rsep", "rsep-realistic"};
    spec.report = [](const bench::HarnessResult &r) {
        std::cout << "=== Fig. 7: ideal vs realistic RSEP ===\n";
        std::cout << "ideal:     "
                  << equality::describeStorage(r.configs[1].mech.rsep, 470,
                                               192)
                  << "\n";
        std::cout << "realistic: "
                  << equality::describeStorage(r.configs[2].mech.rsep, 470,
                                               192)
                  << "\n\n";
        sim::printSpeedupTable(std::cout, r.rows, r.configs);

        // Section VI-B summary: accuracy > 99.5%, coverage of eligible
        // instructions ~28.5% (eligible = register producers).
        u64 correct = 0, wrong = 0, covered = 0, eligible = 0;
        for (const auto &row : r.rows) {
            const sim::RunResult &rr = row.byConfig[2];
            correct += rr.sum(&PipelineStats::rsepCorrect);
            wrong += rr.sum(&PipelineStats::rsepMispredicts);
            covered += rr.sum(&PipelineStats::distPredLoad) +
                       rr.sum(&PipelineStats::distPredOther) +
                       rr.sum(&PipelineStats::moveElim) +
                       rr.sum(&PipelineStats::zeroIdiomElim);
            eligible += rr.sum(&PipelineStats::committedProducers);
        }
        std::printf("\nrealistic RSEP summary across the suite:\n");
        std::printf("  prediction accuracy: %.3f%% (paper: > 99.5%%)\n",
                    correct + wrong
                        ? 100.0 * double(correct) / double(correct + wrong)
                        : 100.0);
        std::printf("  coverage of eligible (reg-producing) instructions: "
                    "%.1f%% (paper: 28.5%% average)\n",
                    eligible ? 100.0 * double(covered) / double(eligible)
                             : 0.0);
    };
    return bench::runHarness(argc, argv, spec);
}

/**
 * @file
 * google-benchmark microbenchmarks of the hot hardware-model
 * structures: result-hash folding, FIFO history matching (the paper's
 * comparator-power concern, Section IV-B2), distance predictor
 * lookup/update, ISRB operations, cache tag access and TAGE lookup.
 */

#include <benchmark/benchmark.h>

#include <iostream>
#include <string_view>

#include "bench_util.hh"
#include "common/rng.hh"
#include "mem/cache.hh"
#include "pred/tage.hh"
#include "rsep/distance_pred.hh"
#include "rsep/fifo_history.hh"
#include "rsep/hash.hh"
#include "rsep/isrb.hh"

namespace
{

using namespace rsep;

void
BM_FoldHash(benchmark::State &state)
{
    Rng rng(1);
    u64 v = rng.next();
    for (auto _ : state) {
        benchmark::DoNotOptimize(equality::foldHash(v));
        v += 0x9e3779b9;
    }
}
BENCHMARK(BM_FoldHash);

void
BM_FifoHistoryMatch(benchmark::State &state)
{
    const unsigned depth = static_cast<unsigned>(state.range(0));
    equality::FifoHistory fifo(depth);
    Rng rng(2);
    for (unsigned i = 0; i < depth; ++i)
        fifo.push(static_cast<u16>(rng.below(1 << 14)), i, i, true);
    u32 csn = depth;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            fifo.match(static_cast<u16>(rng.below(1 << 14)), csn,
                       std::nullopt));
        ++csn;
    }
}
BENCHMARK(BM_FifoHistoryMatch)->Arg(32)->Arg(128)->Arg(256);

void
BM_FifoHistoryPush(benchmark::State &state)
{
    equality::FifoHistory fifo(128);
    Rng rng(3);
    u32 csn = 0;
    for (auto _ : state) {
        fifo.push(static_cast<u16>(rng.below(1 << 14)), csn, csn, true);
        ++csn;
    }
}
BENCHMARK(BM_FifoHistoryPush);

void
BM_DistancePredictorLookup(benchmark::State &state)
{
    equality::DistancePredictor dp;
    pred::GlobalHist h;
    Rng rng(4);
    for (auto _ : state) {
        Addr pc = 0x400000 + (rng.below(256) << 2);
        benchmark::DoNotOptimize(dp.lookup(pc, h));
    }
}
BENCHMARK(BM_DistancePredictorLookup);

void
BM_DistancePredictorTrain(benchmark::State &state)
{
    equality::DistancePredictor dp;
    pred::GlobalHist h;
    Rng rng(5);
    for (auto _ : state) {
        Addr pc = 0x400000 + (rng.below(256) << 2);
        equality::DistLookup lk = dp.lookup(pc, h);
        dp.train(lk, static_cast<u32>(rng.below(128)));
    }
}
BENCHMARK(BM_DistancePredictorTrain);

void
BM_IsrbShareRelease(benchmark::State &state)
{
    equality::Isrb isrb(24);
    Rng rng(6);
    for (auto _ : state) {
        PhysReg p = static_cast<PhysReg>(1 + rng.below(64));
        if (isrb.share(p)) {
            isrb.release(p);
            isrb.release(p);
        }
    }
}
BENCHMARK(BM_IsrbShareRelease);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::CacheLevel l1({.name = "l1", .sizeBytes = 32 * 1024, .assoc = 8,
                        .latency = 4, .mshrs = 64});
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            l1.accessTags(rng.below(1 << 20) << 3, false));
}
BENCHMARK(BM_CacheAccess);

void
BM_TagePredict(benchmark::State &state)
{
    pred::Tage tage;
    pred::GlobalHist h;
    Rng rng(8);
    for (auto _ : state) {
        Addr pc = 0x400000 + (rng.below(1024) << 2);
        pred::TageLookup lk = tage.predict(pc, h);
        benchmark::DoNotOptimize(lk);
        bool taken = rng.chance(1, 2);
        tage.update(lk, pc, taken);
        h.insert(taken, pc);
    }
}
BENCHMARK(BM_TagePredict);

void
BM_TagePredictFolded(benchmark::State &state)
{
    pred::Tage tage;
    pred::GeoFoldSpec spec;
    tage.registerFolds(spec);
    pred::GeoFolds folds;
    folds.bind(&spec);
    pred::GlobalHist h;
    Rng rng(8);
    for (auto _ : state) {
        Addr pc = 0x400000 + (rng.below(1024) << 2);
        pred::TageLookup lk = tage.predict(pc, h, folds);
        benchmark::DoNotOptimize(lk);
        bool taken = rng.chance(1, 2);
        tage.update(lk, pc, taken);
        folds.insertDir(taken, h.dir);
        h.insert(taken, pc);
    }
}
BENCHMARK(BM_TagePredictFolded);

} // namespace

// Google Benchmark owns the flag grammar here; the shared harness
// flags that make sense without a simulation matrix are honoured
// before gbench sees argv.
int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--list-scenarios") {
            rsep::bench::printScenarioList(std::cout);
            return 0;
        }
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

/**
 * @file
 * Shared driver harness for the bench and example binaries: every
 * driver declares a HarnessSpec (its default scenarios, benchmarks and
 * bespoke report) and delegates flag handling, scenario resolution,
 * the matrix run and stat export to runHarness. All drivers accept the
 * same flags: --scenario, --scenario-file, --list-scenarios,
 * --workload, --workload-file, --list-workloads, --csv, --json,
 * --stats, --timings, --seed, --jobs, --steal, --shard, --cache-dir,
 * --record-trace, --replay-trace, --sample-every, --sample-dir and
 * --help.
 */

#ifndef RSEP_BENCH_BENCH_UTIL_HH
#define RSEP_BENCH_BENCH_UTIL_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/scenario.hh"
#include "sim/stat_export.hh"
#include "wl/suite.hh"

namespace rsep::bench
{

/**
 * Apply the bench-default run size: harnesses default to a smaller
 * window (2 checkpoints, 0.4x instructions) than the library default
 * so the full figure suite completes in minutes on one core. Both are
 * overridable through the environment. Registry-sourced scenarios get
 * this sizing; scenario files control their own `[sim]` section and
 * are left untouched.
 */
void applyBenchDefaults(sim::SimConfig &cfg);

/** The benchmarks the paper highlights for RSEP (Section VI-B). */
std::vector<std::string> highlightBenchmarks();

/** Everything runHarness parsed off the command line. */
struct DriverContext
{
    sim::MatrixOptions matrix; ///< jobs, --steal, --shard, --cache-dir,
                               ///< --record-trace/--replay-trace.
    /** From --scenario / --scenario-file, in flag order. */
    std::vector<sim::Scenario> scenarios;
    bool scenariosOverridden = false;
    /** Run-cell keys from --workload / --workload-file, in flag order
     *  (already resolved through the workload registry); non-empty
     *  overrides the driver's benchmark set. */
    std::vector<std::string> workloads;
    std::string csvPath;
    std::string jsonPath;
    bool statsTable = false;
    /** --timings: add the host-dependent wall-clock and cache counters
     *  (timing.<name>) to the dumps (off by default so dumps stay
     *  bit-reproducible). */
    bool timings = false;
    /** --seed N: override every run scenario's [sim] seed (changes the
     *  config hash, hence shard assignment and cache identity). */
    bool seedOverridden = false;
    u64 seedValue = 0;
    /** --connect SOCK: run the matrix on a warm rsep_serve daemon
     *  instead of in-process. Output is byte-identical to a direct
     *  run; server-side resources (--jobs, --cache-dir, --shard,
     *  --record-trace, --steal, --trace-cache-mb) are rejected with a
     *  clear error — they belong on the rsep_serve command line. */
    std::string connectSocket;
    /** --connect-timeout MS: keep re-trying the initial connect this
     *  long (daemon still warming up); 0 = one attempt. */
    u64 connectTimeoutMs = 0;
    /** --deadline MS: hard ceiling on the whole remote request
     *  including retries; 0 = none. */
    u64 deadlineMs = 0;
    /** --retries N: reconnect+resubmit attempts after a transient
     *  failure or Busy rejection (default 3; 0 = fail fast). */
    unsigned retries = 3;
    std::vector<std::string> positional;
};

/** The matrix a harness run produced, for bespoke reports. */
struct HarnessResult
{
    std::vector<sim::SimConfig> configs;
    std::vector<sim::MatrixRow> rows;
};

/** Static description of one driver binary. */
struct HarnessSpec
{
    const char *name = "driver";
    const char *description = "";
    /** Registered scenario names run by a flag-less invocation. */
    std::vector<std::string> defaultScenarios;
    /** Default benchmark set; empty = the full 29-bench suite. */
    std::vector<std::string> benchmarks;
    /** Apply applyBenchDefaults to registry-sourced scenarios. */
    bool benchDefaults = true;
    /** Positional arguments name benchmarks to run. */
    bool positionalBenchmarks = false;
    const char *positionalHelp = nullptr;
    /** Bespoke tables for the default arm set (kept byte-identical to
     *  the pre-harness drivers); scenario overrides use the generic
     *  speedup table instead. */
    std::function<void(const HarnessResult &)> report;
    /** Full-control drivers (sweeps, single-run dumps): invoked with
     *  the parsed context instead of the standard matrix flow. */
    std::function<int(const DriverContext &)> custom;
};

/**
 * Run a driver: parse flags (--help and --list-scenarios exit here),
 * resolve scenarios, fan out the matrix, print the report and write
 * any requested CSV/JSON/stat-table dump. Returns the process exit
 * code.
 */
int runHarness(int argc, char **argv, const HarnessSpec &spec);

/** Run an explicit scenario list through the generic matrix + report
 *  + export path (what scenario overrides and sweep drivers use). */
int runScenarioMatrix(const HarnessSpec &spec, const DriverContext &ctx,
                      const std::vector<sim::Scenario> &scenarios);

/** Write the CSV/JSON/table dumps requested in @p ctx. False on I/O
 *  failure (already reported to stderr). */
bool exportStats(const DriverContext &ctx,
                 const std::vector<sim::SimConfig> &configs,
                 const std::vector<sim::MatrixRow> &rows);

/** Print the registered-scenario listing (--list-scenarios). */
void printScenarioList(std::ostream &os);

/** Print the workload-registry listing (--list-workloads). */
void printWorkloadList(std::ostream &os);

/**
 * For custom drivers that run no experiment matrix: warn on stderr
 * about parsed flags the run cannot honour — a silently dropped --csv
 * would otherwise look like a successful export. @p scenarios_used is
 * how many of ctx.scenarios the driver consumed.
 */
void warnUnusedMatrixFlags(const char *driver, const DriverContext &ctx,
                           size_t scenarios_used);

} // namespace rsep::bench

#endif // RSEP_BENCH_BENCH_UTIL_HH

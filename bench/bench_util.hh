/**
 * @file
 * Shared helpers for the experiment harnesses: default run sizing
 * (overridable via RSEP_SIM_SCALE / RSEP_CHECKPOINTS) and common
 * benchmark subsets.
 */

#ifndef RSEP_BENCH_BENCH_UTIL_HH
#define RSEP_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "wl/suite.hh"

namespace rsep::bench
{

/**
 * Apply the bench-default run size: harnesses default to a smaller
 * window (2 checkpoints, 0.4x instructions) than the library default
 * so the full figure suite completes in minutes on one core. Both are
 * overridable through the environment.
 */
inline void
applyBenchDefaults(sim::SimConfig &cfg)
{
    if (!std::getenv("RSEP_SIM_SCALE")) {
        cfg.warmupInsts = static_cast<u64>(cfg.warmupInsts * 0.4);
        cfg.measureInsts = static_cast<u64>(cfg.measureInsts * 0.4);
    }
    if (!std::getenv("RSEP_CHECKPOINTS"))
        cfg.checkpoints = 2;
}

/** The benchmarks the paper highlights for RSEP (Section VI-B). */
inline std::vector<std::string>
highlightBenchmarks()
{
    return {"mcf", "dealII", "hmmer", "libquantum", "omnetpp",
            "xalancbmk"};
}

/**
 * Matrix-runner options for a harness: worker count from `--jobs N` /
 * `--jobs=N` / `-jN` on the command line, falling back to RSEP_JOBS
 * and then to the hardware thread count.
 */
inline sim::MatrixOptions
matrixOptions(int argc, char **argv)
{
    sim::MatrixOptions opts;
    opts.jobs = sim::parseJobsArg(argc, argv);
    return opts;
}

} // namespace rsep::bench

#endif // RSEP_BENCH_BENCH_UTIL_HH
